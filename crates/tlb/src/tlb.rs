//! The two-level TLB with OBitVector-extended entries.

use po_telemetry::{Event as TelemetryEvent, HitLevel, TelemetrySink};
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{Asid, Counter, OBitVector, PoError, PoResult, Ppn, Vpn};
use po_vm::{Pte, PteFlags};

/// TLB geometry and latencies (defaults = Table 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 entries (Table 2: 64).
    pub l1_entries: usize,
    /// L1 associativity (Table 2: 4-way).
    pub l1_ways: usize,
    /// L1 hit latency in cycles (Table 2: 1).
    pub l1_latency: u64,
    /// L2 entries (Table 2: 1024).
    pub l2_entries: usize,
    /// L2 associativity (8-way; Table 2 gives only size).
    pub l2_ways: usize,
    /// L2 hit latency in cycles (Table 2: 10).
    pub l2_latency: u64,
    /// Full-miss (page-table walk) latency in cycles (Table 2: 1000).
    pub miss_latency: u64,
    /// Extra fill latency when the walk must also fetch the OBitVector
    /// from the OMT (the cost the paper accepts in §4.3: "this
    /// potentially increases the cost of each TLB miss").
    pub obitvector_fill_latency: u64,
}

impl TlbConfig {
    /// The Table 2 configuration.
    pub fn table2() -> Self {
        Self {
            l1_entries: 64,
            l1_ways: 4,
            l1_latency: 1,
            l2_entries: 1024,
            l2_ways: 8,
            l2_latency: 10,
            miss_latency: 1000,
            obitvector_fill_latency: 0,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// One TLB entry: translation plus the overlay bit vector (Figure 6 Ì).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Owning process.
    pub asid: Asid,
    /// Virtual page.
    pub vpn: Vpn,
    /// Cached translation and flags.
    pub pte: Pte,
    /// Which lines of the page live in its overlay.
    pub obitvec: OBitVector,
}

/// Where a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the L1 TLB.
    L1Hit,
    /// Hit in the L2 TLB (entry promoted to L1).
    L2Hit,
    /// Missed both levels; the caller must walk the page table and
    /// [`Tlb::fill`].
    Miss,
}

/// Result of a lookup: outcome, latency, and the entry if present.
#[derive(Clone, Copy, Debug)]
pub struct TlbLookup {
    /// Hit level or miss.
    pub outcome: TlbOutcome,
    /// Cycles consumed by the lookup (miss latency is *not* included —
    /// the walk is charged by the caller via [`TlbConfig::miss_latency`]).
    pub latency: u64,
    /// The entry, on a hit.
    pub entry: Option<TlbEntry>,
}

/// TLB statistics.
#[derive(Clone, Debug, Default)]
pub struct TlbStats {
    /// L1 hits.
    pub l1_hits: Counter,
    /// L2 hits.
    pub l2_hits: Counter,
    /// Full misses.
    pub misses: Counter,
    /// Whole-page invalidations (classic shootdowns).
    pub shootdowns: Counter,
    /// Single-line OBitVector updates delivered by coherence (§4.3.3) —
    /// the operations that *replace* shootdowns under overlay-on-write.
    pub obit_updates: Counter,
}

#[derive(Clone, Debug)]
struct TlbArray {
    sets: usize,
    ways: usize,
    entries: Vec<Option<TlbEntry>>,
    /// Per-way LRU rank (0 = MRU), permutation per set.
    ranks: Vec<u8>,
}

impl TlbArray {
    fn new(entries: usize, ways: usize) -> Self {
        assert!(entries.is_multiple_of(ways), "TLB entries must divide evenly into ways");
        let sets = entries / ways;
        Self {
            sets,
            ways,
            entries: vec![None; entries],
            ranks: (0..entries).map(|i| (i % ways) as u8).collect(),
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.raw() % self.sets as u64) as usize
    }

    fn touch(&mut self, set: usize, way: usize) {
        let base = set * self.ways;
        let old = self.ranks[base + way];
        for w in 0..self.ways {
            if w == way {
                self.ranks[base + w] = 0;
            } else if self.ranks[base + w] < old {
                self.ranks[base + w] += 1;
            }
        }
    }

    fn find(&self, asid: Asid, vpn: Vpn) -> Option<(usize, usize)> {
        let set = self.set_of(vpn);
        let base = set * self.ways;
        for w in 0..self.ways {
            if let Some(e) = &self.entries[base + w] {
                if e.asid == asid && e.vpn == vpn {
                    return Some((set, w));
                }
            }
        }
        None
    }

    fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<TlbEntry> {
        let (set, way) = self.find(asid, vpn)?;
        self.touch(set, way);
        self.entries[set * self.ways + way]
    }

    fn insert(&mut self, entry: TlbEntry) {
        let set = self.set_of(entry.vpn);
        let base = set * self.ways;
        // Replace an existing copy of the same page if present.
        if let Some((s, w)) = self.find(entry.asid, entry.vpn) {
            self.entries[s * self.ways + w] = Some(entry);
            self.touch(s, w);
            return;
        }
        // Otherwise pick an invalid way, else the LRU way (way 0 is
        // unreachable fallback: `new` guarantees at least one way).
        let way = (0..self.ways)
            .find(|&w| self.entries[base + w].is_none())
            .or_else(|| (0..self.ways).max_by_key(|&w| self.ranks[base + w]))
            .unwrap_or(0);
        self.entries[base + way] = Some(entry);
        self.touch(set, way);
    }

    fn invalidate(&mut self, asid: Asid, vpn: Vpn) -> bool {
        if let Some((set, way)) = self.find(asid, vpn) {
            self.entries[set * self.ways + way] = None;
            true
        } else {
            false
        }
    }

    fn entry_mut(&mut self, asid: Asid, vpn: Vpn) -> Option<&mut TlbEntry> {
        let (set, way) = self.find(asid, vpn)?;
        self.entries[set * self.ways + way].as_mut()
    }

    fn flush_asid(&mut self, asid: Asid) {
        for e in self.entries.iter_mut() {
            if e.map(|x| x.asid == asid).unwrap_or(false) {
                *e = None;
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        for e in &self.entries {
            match e {
                None => w.put_bool(false),
                Some(e) => {
                    w.put_bool(true);
                    w.put_u16(e.asid.raw());
                    w.put_u64(e.vpn.raw());
                    w.put_u64(e.pte.ppn.raw());
                    let f = e.pte.flags;
                    w.put_u8(
                        f.present as u8
                            | (f.writable as u8) << 1
                            | (f.cow as u8) << 2
                            | (f.overlay_enabled as u8) << 3,
                    );
                    w.put_u64(e.obitvec.raw());
                }
            }
        }
        for rank in &self.ranks {
            w.put_u8(*rank);
        }
    }

    fn decode_snapshot(r: &mut SnapshotReader, entries: usize, ways: usize) -> PoResult<Self> {
        let mut array = TlbArray::new(entries, ways);
        for slot in array.entries.iter_mut() {
            *slot = if r.get_bool()? {
                let raw_asid = r.get_u16()?;
                if raw_asid > Asid::MAX {
                    return Err(PoError::Corrupted("snapshot TLB ASID exceeds 15 bits"));
                }
                let asid = Asid::new(raw_asid);
                let vpn = Vpn::new(r.get_u64()?);
                let ppn = Ppn::new(r.get_u64()?);
                let f = r.get_u8()?;
                if f & !0xF != 0 {
                    return Err(PoError::Corrupted("snapshot TLB PTE flags have unknown bits"));
                }
                let flags = PteFlags {
                    present: f & 1 != 0,
                    writable: f & 2 != 0,
                    cow: f & 4 != 0,
                    overlay_enabled: f & 8 != 0,
                };
                let obitvec = OBitVector::from_raw(r.get_u64()?);
                Some(TlbEntry { asid, vpn, pte: Pte { ppn, flags }, obitvec })
            } else {
                None
            };
        }
        for rank in array.ranks.iter_mut() {
            let v = r.get_u8()?;
            if v as usize >= ways {
                return Err(PoError::Corrupted("snapshot TLB LRU rank exceeds ways"));
            }
            *rank = v;
        }
        Ok(array)
    }
}

/// The two-level TLB. See the [crate docs](crate) for an example.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    l1: TlbArray,
    l2: TlbArray,
    stats: TlbStats,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let l1 = TlbArray::new(config.l1_entries, config.l1_ways);
        let l2 = TlbArray::new(config.l2_entries, config.l2_ways);
        Self { config, l1, l2, stats: TlbStats::default(), sink: TelemetrySink::noop() }
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Returns the configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Looks up a translation. On an L2 hit the entry is promoted to L1.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> TlbLookup {
        let lookup = self.lookup_inner(asid, vpn);
        if self.sink.is_active() {
            self.sink.emit(|| TelemetryEvent::TlbLookup {
                asid: asid.raw(),
                vpn: vpn.raw(),
                level: match lookup.outcome {
                    TlbOutcome::L1Hit => HitLevel::L1,
                    TlbOutcome::L2Hit => HitLevel::L2,
                    TlbOutcome::Miss => HitLevel::Miss,
                },
                latency: lookup.latency,
            });
            self.sink.count(
                match lookup.outcome {
                    TlbOutcome::L1Hit => "tlb.l1_hits",
                    TlbOutcome::L2Hit => "tlb.l2_hits",
                    TlbOutcome::Miss => "tlb.misses",
                },
                1,
            );
        }
        lookup
    }

    fn lookup_inner(&mut self, asid: Asid, vpn: Vpn) -> TlbLookup {
        if let Some(e) = self.l1.lookup(asid, vpn) {
            self.stats.l1_hits.inc();
            return TlbLookup {
                outcome: TlbOutcome::L1Hit,
                latency: self.config.l1_latency,
                entry: Some(e),
            };
        }
        if let Some(e) = self.l2.lookup(asid, vpn) {
            self.stats.l2_hits.inc();
            self.l1.insert(e);
            return TlbLookup {
                outcome: TlbOutcome::L2Hit,
                latency: self.config.l1_latency + self.config.l2_latency,
                entry: Some(e),
            };
        }
        self.stats.misses.inc();
        TlbLookup {
            outcome: TlbOutcome::Miss,
            latency: self.config.l1_latency + self.config.l2_latency,
            entry: None,
        }
    }

    /// Latency of the page-table walk plus OBitVector fetch charged on a
    /// miss.
    pub fn miss_penalty(&self) -> u64 {
        self.config.miss_latency + self.config.obitvector_fill_latency
    }

    /// Installs a walked translation into both levels.
    pub fn fill(&mut self, entry: TlbEntry) {
        self.l2.insert(entry);
        self.l1.insert(entry);
    }

    /// Classic single-page shootdown (invalidate everywhere). This is the
    /// expensive operation overlay-on-write avoids; counted separately
    /// from OBitVector updates. Returns `true` if a cached entry was
    /// actually dropped — the multi-core machine uses this to account
    /// cross-core invalidations.
    pub fn shootdown(&mut self, asid: Asid, vpn: Vpn) -> bool {
        self.stats.shootdowns.inc();
        let l1 = self.l1.invalidate(asid, vpn);
        let l2 = self.l2.invalidate(asid, vpn);
        l1 || l2
    }

    /// Delivers a coherence-carried OBitVector update for one line
    /// (§4.3.3): if this TLB caches the page, the bit is set (overlaying
    /// write) or cleared in place. Returns `true` if any cached entry was
    /// updated.
    pub fn coherence_obit_update(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        line: usize,
        present: bool,
    ) -> bool {
        let mut hit = false;
        for array in [&mut self.l1, &mut self.l2] {
            if let Some(e) = array.entry_mut(asid, vpn) {
                if present {
                    e.obitvec.set(line);
                } else {
                    e.obitvec.clear(line);
                }
                hit = true;
            }
        }
        if hit {
            self.stats.obit_updates.inc();
        }
        hit
    }

    /// Replaces the whole OBitVector of a cached page (promotion actions,
    /// §4.3.4, clear the vector in one step).
    pub fn replace_obitvec(&mut self, asid: Asid, vpn: Vpn, obitvec: OBitVector) -> bool {
        let mut hit = false;
        for array in [&mut self.l1, &mut self.l2] {
            if let Some(e) = array.entry_mut(asid, vpn) {
                e.obitvec = obitvec;
                hit = true;
            }
        }
        hit
    }

    /// Reads the cached entry without updating LRU state (tests and
    /// invariant checks).
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<TlbEntry> {
        self.l1.find(asid, vpn).and_then(|(s, w)| self.l1.entries[s * self.l1.ways + w]).or_else(
            || self.l2.find(asid, vpn).and_then(|(s, w)| self.l2.entries[s * self.l2.ways + w]),
        )
    }

    /// Flushes all entries of a process (context destruction).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.l1.flush_asid(asid);
        self.l2.flush_asid(asid);
    }

    /// Total valid entries across both levels.
    pub fn occupancy(&self) -> usize {
        self.l1.occupancy() + self.l2.occupancy()
    }

    /// Serializes both levels (entries plus LRU ranks) and statistics.
    /// Geometry comes from the config and is not re-encoded.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        self.l1.encode_snapshot(w);
        self.l2.encode_snapshot(w);
        for c in [
            &self.stats.l1_hits,
            &self.stats.l2_hits,
            &self.stats.misses,
            &self.stats.shootdowns,
            &self.stats.obit_updates,
        ] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a TLB with `config` geometry from [`encode_snapshot`]
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Corrupted`] on truncation or malformed data;
    /// the caller must pass the same config the snapshot was taken with.
    pub fn decode_snapshot(config: TlbConfig, r: &mut SnapshotReader) -> PoResult<Self> {
        let l1 = TlbArray::decode_snapshot(r, config.l1_entries, config.l1_ways)?;
        let l2 = TlbArray::decode_snapshot(r, config.l2_entries, config.l2_ways)?;
        let mut stats = TlbStats::default();
        for c in [
            &mut stats.l1_hits,
            &mut stats.l2_hits,
            &mut stats.misses,
            &mut stats.shootdowns,
            &mut stats.obit_updates,
        ] {
            c.add(r.get_u64()?);
        }
        Ok(Self { config, l1, l2, stats, sink: TelemetrySink::noop() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::Ppn;
    use po_vm::PteFlags;

    fn entry(asid: u16, vpn: u64) -> TlbEntry {
        TlbEntry {
            asid: Asid::new(asid),
            vpn: Vpn::new(vpn),
            pte: Pte {
                ppn: Ppn::new(vpn + 1000),
                flags: PteFlags { present: true, writable: true, ..Default::default() },
            },
            obitvec: OBitVector::EMPTY,
        }
    }

    #[test]
    fn miss_fill_hit_progression() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        let a = Asid::new(1);
        assert_eq!(tlb.lookup(a, Vpn::new(5)).outcome, TlbOutcome::Miss);
        tlb.fill(entry(1, 5));
        assert_eq!(tlb.lookup(a, Vpn::new(5)).outcome, TlbOutcome::L1Hit);
        assert_eq!(tlb.stats().misses.get(), 1);
        assert_eq!(tlb.stats().l1_hits.get(), 1);
    }

    #[test]
    fn latencies_match_table2() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        tlb.fill(entry(1, 5));
        assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(5)).latency, 1);
        let miss = tlb.lookup(Asid::new(1), Vpn::new(99));
        assert_eq!(miss.latency, 11);
        assert_eq!(tlb.miss_penalty(), 1000);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        tlb.fill(entry(1, 7));
        // Evict vpn 7 from L1 by filling conflicting entries: L1 has 16
        // sets, so vpns 7+16k collide.
        for k in 1..=4u64 {
            tlb.fill(entry(1, 7 + 16 * k));
        }
        let l = tlb.lookup(Asid::new(1), Vpn::new(7));
        assert_eq!(l.outcome, TlbOutcome::L2Hit);
        assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(7)).outcome, TlbOutcome::L1Hit);
    }

    #[test]
    fn asid_disambiguates_identical_vpns() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        let mut e1 = entry(1, 9);
        e1.pte.ppn = Ppn::new(111);
        let mut e2 = entry(2, 9);
        e2.pte.ppn = Ppn::new(222);
        tlb.fill(e1);
        tlb.fill(e2);
        assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(9)).entry.unwrap().pte.ppn, Ppn::new(111));
        assert_eq!(tlb.lookup(Asid::new(2), Vpn::new(9)).entry.unwrap().pte.ppn, Ppn::new(222));
    }

    #[test]
    fn shootdown_removes_both_levels() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        tlb.fill(entry(1, 3));
        assert!(tlb.shootdown(Asid::new(1), Vpn::new(3)), "entry was resident");
        assert!(!tlb.shootdown(Asid::new(1), Vpn::new(3)), "nothing left to drop");
        assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(3)).outcome, TlbOutcome::Miss);
        assert_eq!(tlb.stats().shootdowns.get(), 2);
    }

    #[test]
    fn coherence_update_flips_single_bit_without_invalidation() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        tlb.fill(entry(1, 4));
        assert!(tlb.coherence_obit_update(Asid::new(1), Vpn::new(4), 10, true));
        let e = tlb.peek(Asid::new(1), Vpn::new(4)).unwrap();
        assert!(e.obitvec.contains(10));
        assert_eq!(e.obitvec.len(), 1);
        // Entry is still resident — no shootdown happened.
        assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(4)).outcome, TlbOutcome::L1Hit);
        assert_eq!(tlb.stats().shootdowns.get(), 0);
        assert_eq!(tlb.stats().obit_updates.get(), 1);
    }

    #[test]
    fn coherence_update_misses_cleanly() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        assert!(!tlb.coherence_obit_update(Asid::new(1), Vpn::new(4), 10, true));
        assert_eq!(tlb.stats().obit_updates.get(), 0);
    }

    #[test]
    fn replace_obitvec_clears_on_promotion() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        let mut e = entry(1, 6);
        e.obitvec = OBitVector::from_raw(0xff);
        tlb.fill(e);
        assert!(tlb.replace_obitvec(Asid::new(1), Vpn::new(6), OBitVector::EMPTY));
        assert!(tlb.peek(Asid::new(1), Vpn::new(6)).unwrap().obitvec.is_empty());
    }

    #[test]
    fn flush_asid_clears_only_that_process() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        tlb.fill(entry(1, 1));
        tlb.fill(entry(2, 2));
        tlb.flush_asid(Asid::new(1));
        assert_eq!(tlb.lookup(Asid::new(1), Vpn::new(1)).outcome, TlbOutcome::Miss);
        assert_eq!(tlb.lookup(Asid::new(2), Vpn::new(2)).outcome, TlbOutcome::L1Hit);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut tlb = Tlb::new(TlbConfig::table2());
        for v in 0..5000u64 {
            tlb.fill(entry(1, v));
        }
        assert!(tlb.occupancy() <= 64 + 1024);
    }
}
