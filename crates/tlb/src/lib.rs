//! # po-tlb — OBitVector-extended translation lookaside buffers
//!
//! Table 2 configures a 64-entry 4-way L1 TLB (1 cycle), a 1024-entry L2
//! TLB (10 cycles) and a 1000-cycle miss (page-table walk). The paper
//! extends every TLB entry with the 64-bit **OBitVector** (§4.3, change
//! Ì in Figure 6) so the processor can decide, during address
//! translation, whether an access targets the overlay or the regular
//! physical page.
//!
//! The crate also implements the paper's TLB-coherence scheme for
//! overlaying writes (§4.3.3): instead of a TLB shootdown, a new
//! *overlaying read exclusive* coherence message carries the overlay page
//! number — which uniquely identifies `(ASID, VPN)` because overlays are
//! never shared — and every TLB holding the page flips the single
//! OBitVector bit in place ([`broadcast_overlaying_write`]).
//!
//! # Example
//!
//! ```
//! use po_tlb::{Tlb, TlbConfig, TlbEntry, TlbOutcome};
//! use po_types::{Asid, OBitVector, Vpn};
//! use po_vm::{Pte, PteFlags};
//!
//! let mut tlb = Tlb::new(TlbConfig::table2());
//! let asid = Asid::new(1);
//! let vpn = Vpn::new(0x42);
//! assert!(matches!(tlb.lookup(asid, vpn).outcome, TlbOutcome::Miss));
//! tlb.fill(TlbEntry {
//!     asid, vpn,
//!     pte: Pte { ppn: po_types::Ppn::new(7), flags: PteFlags { present: true, writable: true, ..Default::default() } },
//!     obitvec: OBitVector::EMPTY,
//! });
//! let hit = tlb.lookup(asid, vpn);
//! assert!(matches!(hit.outcome, TlbOutcome::L1Hit));
//! assert_eq!(hit.latency, 1);
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod coherence;
pub mod tlb;

pub use coherence::{broadcast_overlaying_write, OverlayingReadExclusive};
pub use tlb::{Tlb, TlbConfig, TlbEntry, TlbLookup, TlbOutcome, TlbStats};
