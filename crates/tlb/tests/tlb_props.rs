//! Property tests for the TLB: hit/miss behavior against a bounded
//! oracle, and coherence-update consistency under random interleavings.

use po_tlb::{Tlb, TlbConfig, TlbEntry, TlbOutcome};
use po_types::{Asid, OBitVector, Ppn, Vpn};
use po_vm::{Pte, PteFlags};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn entry(asid: u16, vpn: u64, ppn: u64) -> TlbEntry {
    TlbEntry {
        asid: Asid::new(asid),
        vpn: Vpn::new(vpn),
        pte: Pte {
            ppn: Ppn::new(ppn),
            flags: PteFlags { present: true, writable: true, ..Default::default() },
        },
        obitvec: OBitVector::EMPTY,
    }
}

#[derive(Clone, Debug)]
enum Op {
    Fill { asid: u16, vpn: u64, ppn: u64 },
    Lookup { asid: u16, vpn: u64 },
    Shootdown { asid: u16, vpn: u64 },
    ObitSet { asid: u16, vpn: u64, line: usize },
    FlushAsid { asid: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let asid = 1u16..4;
    let vpn = 0u64..64;
    prop_oneof![
        (asid.clone(), vpn.clone(), 0u64..1024).prop_map(|(asid, vpn, ppn)| Op::Fill {
            asid,
            vpn,
            ppn
        }),
        (asid.clone(), vpn.clone()).prop_map(|(asid, vpn)| Op::Lookup { asid, vpn }),
        (asid.clone(), vpn.clone()).prop_map(|(asid, vpn)| Op::Shootdown { asid, vpn }),
        (asid.clone(), vpn.clone(), 0usize..64).prop_map(|(asid, vpn, line)| Op::ObitSet {
            asid,
            vpn,
            line
        }),
        asid.prop_map(|asid| Op::FlushAsid { asid }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hits never return wrong data: whatever the TLB returns must match
    /// the last fill for that `(asid, vpn)`; misses are always allowed
    /// (capacity), but a hit after a shootdown/flush without a refill is
    /// forbidden.
    #[test]
    fn tlb_never_returns_stale_translations(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut tlb = Tlb::new(TlbConfig::table2());
        // Oracle: the authoritative latest state per (asid, vpn), or
        // None after an invalidation.
        let mut truth: BTreeMap<(u16, u64), Option<(u64, OBitVector)>> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Fill { asid, vpn, ppn } => {
                    tlb.fill(entry(asid, vpn, ppn));
                    truth.insert((asid, vpn), Some((ppn, OBitVector::EMPTY)));
                }
                Op::Lookup { asid, vpn } => {
                    let got = tlb.lookup(Asid::new(asid), Vpn::new(vpn));
                    match got.outcome {
                        TlbOutcome::Miss => prop_assert!(got.entry.is_none()),
                        _ => {
                            let e = got.entry.expect("hit carries an entry");
                            let expected = truth
                                .get(&(asid, vpn))
                                .copied()
                                .flatten();
                            let (ppn, obv) = expected
                                .unwrap_or_else(|| panic!("hit for never-filled/invalidated ({asid},{vpn})"));
                            prop_assert_eq!(e.pte.ppn.raw(), ppn);
                            prop_assert_eq!(e.obitvec, obv);
                        }
                    }
                }
                Op::Shootdown { asid, vpn } => {
                    tlb.shootdown(Asid::new(asid), Vpn::new(vpn));
                    truth.insert((asid, vpn), None);
                }
                Op::ObitSet { asid, vpn, line } => {
                    let updated = tlb.coherence_obit_update(Asid::new(asid), Vpn::new(vpn), line, true);
                    if updated {
                        if let Some(Some((_, obv))) = truth.get_mut(&(asid, vpn)) {
                            obv.set(line);
                        }
                    }
                    // An update can only land on a cached page.
                    if updated {
                        prop_assert!(truth.get(&(asid, vpn)).copied().flatten().is_some());
                    }
                }
                Op::FlushAsid { asid } => {
                    tlb.flush_asid(Asid::new(asid));
                    for ((a, _), v) in truth.iter_mut() {
                        if *a == asid {
                            *v = None;
                        }
                    }
                }
            }
        }
    }

    /// Capacity never exceeds the configured entry counts.
    #[test]
    fn occupancy_is_bounded(fills in prop::collection::vec((1u16..8, 0u64..10_000), 1..300)) {
        let mut tlb = Tlb::new(TlbConfig::table2());
        for &(asid, vpn) in &fills {
            tlb.fill(entry(asid, vpn, vpn + 1));
        }
        prop_assert!(tlb.occupancy() <= 64 + 1024);
    }
}
