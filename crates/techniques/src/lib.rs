//! # po-techniques — the five remaining Table-1 techniques
//!
//! The paper quantitatively evaluates two applications of the overlay
//! framework (overlay-on-write in `po-sim`, sparse data structures in
//! `po-sparse`) and describes five more (§5.3). This crate implements
//! all five on top of [`po_overlay::OverlayManager`]:
//!
//! * [`dedup`] — **fine-grained deduplication** (§5.3.1): pages with
//!   mostly-identical data share one base physical page; the differing
//!   cache lines live in each page's overlay (a hardware-assisted
//!   Difference Engine).
//! * [`checkpoint`] — **efficient checkpointing** (§5.3.2): overlays
//!   capture all updates between checkpoints; only the overlays are
//!   written to the backing store, then committed.
//! * [`speculation`] — **virtualizing speculation** (§5.3.3):
//!   speculative updates buffer in overlays, surviving cache eviction
//!   (unbounded speculation); commit/discard maps directly onto the
//!   framework's promotion actions.
//! * [`metadata`] — **fine-grained metadata management** (§5.3.4): the
//!   overlay address space doubles as shadow memory; word-granularity
//!   metadata (taint, protection) is stored in shadow overlays with
//!   dedicated metadata load/store operations.
//! * [`superpage`] — **flexible super-pages** (§5.3.5): a 2 MB
//!   super-page is divided into 64 segments (one per OBitVector bit);
//!   individual segments can be remapped, copied on write, or given
//!   their own protection, without breaking up the super-page.
//!
//! Each module is self-contained and exercised by unit tests plus the
//! workspace-level examples and property tests.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod checkpoint;
pub mod dedup;
pub mod metadata;
pub mod speculation;
pub mod superpage;

pub use checkpoint::{CheckpointStats, Checkpointer};
pub use dedup::{DedupStats, DifferenceEngine};
pub use metadata::{ShadowMemory, WordProtection};
pub use speculation::{SpeculationState, SpeculativeRegion};
pub use superpage::FlexSuperPage;
