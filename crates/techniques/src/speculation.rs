//! Virtualizing speculation (§5.3.3).
//!
//! Hardware speculation (thread-level speculation, transactional
//! memory) traditionally buffers speculative updates in the cache and
//! must abort when a speculative line is evicted. With overlays, the
//! updates go to the page's overlay instead: "the overlay can be
//! committed or discarded based on whether the speculation succeeds or
//! fails. This approach is not limited by cache capacity and enables
//! potentially unbounded speculation."

use po_dram::DataStore;
use po_overlay::OverlayManager;
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{Asid, Counter, LineData, MainMemAddr, Opn, PoError, PoResult, Vpn};
use std::collections::BTreeSet;

/// State of a speculative region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpeculationState {
    /// No transaction open.
    Idle,
    /// A transaction is buffering updates in overlays.
    Active,
}

/// Statistics.
#[derive(Clone, Debug, Default)]
pub struct SpeculationStats {
    /// Transactions committed.
    pub commits: Counter,
    /// Transactions aborted.
    pub aborts: Counter,
    /// Speculative lines evicted to the OMS mid-transaction (the cases
    /// that would have killed a cache-bound scheme).
    pub overflowed_lines: Counter,
}

/// A region of memory supporting overlay-buffered speculation.
///
/// # Example
///
/// ```
/// use po_techniques::{SpeculativeRegion, SpeculationState};
/// use po_types::LineData;
///
/// let mut region = SpeculativeRegion::new(8);
/// region.begin()?;
/// region.spec_write(0, 0, LineData::splat(1))?;
/// assert_eq!(region.read(0, 0)?, LineData::splat(1)); // visible inside
/// region.abort()?;
/// assert_eq!(region.read(0, 0)?, LineData::zeroed()); // rolled back
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Debug)]
pub struct SpeculativeRegion {
    manager: OverlayManager,
    mem: DataStore,
    pages: u64,
    state: SpeculationState,
    touched: BTreeSet<u64>,
    oms_cursor: u64,
    stats: SpeculationStats,
}

const BASE_FRAME: u64 = 0x3000;

fn opn_of(page: u64) -> Opn {
    Opn::encode(Asid::new(2), Vpn::new(page))
}

impl SpeculativeRegion {
    /// Creates a region of `pages` zero-initialized pages.
    pub fn new(pages: u64) -> Self {
        Self {
            manager: OverlayManager::new(Default::default()),
            mem: DataStore::new(),
            pages,
            state: SpeculationState::Idle,
            touched: BTreeSet::new(),
            oms_cursor: 0x300_0000,
            stats: SpeculationStats::default(),
        }
    }

    /// Returns statistics.
    pub fn stats(&self) -> &SpeculationStats {
        &self.stats
    }

    /// Current state.
    pub fn state(&self) -> SpeculationState {
        self.state
    }

    fn frame(&self, page: u64) -> MainMemAddr {
        MainMemAddr::new((BASE_FRAME + page) * PAGE_SIZE as u64)
    }

    /// Writes committed (non-speculative) state; only legal outside a
    /// transaction.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] if a transaction is active.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn write(&mut self, page: u64, line: usize, data: LineData) -> PoResult<()> {
        assert!(page < self.pages, "page {page} out of range");
        if self.state == SpeculationState::Active {
            return Err(PoError::Corrupted("non-speculative write inside a transaction"));
        }
        self.mem.write_line(self.frame(page).add((line * LINE_SIZE) as u64), data);
        Ok(())
    }

    /// Opens a transaction.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] if one is already active.
    pub fn begin(&mut self) -> PoResult<()> {
        if self.state == SpeculationState::Active {
            return Err(PoError::Corrupted("nested transactions are not supported"));
        }
        self.state = SpeculationState::Active;
        self.touched.clear();
        Ok(())
    }

    /// Buffers a speculative write in the page's overlay.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] if no transaction is active.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn spec_write(&mut self, page: u64, line: usize, data: LineData) -> PoResult<()> {
        assert!(page < self.pages, "page {page} out of range");
        if self.state != SpeculationState::Active {
            return Err(PoError::Corrupted("speculative write outside a transaction"));
        }
        self.touched.insert(page);
        self.manager.overlaying_write(opn_of(page), line, data)
    }

    /// Reads with transactional semantics: speculative data if present,
    /// else committed state.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn read(&self, page: u64, line: usize) -> PoResult<LineData> {
        let phys = self.frame(page).add((line * LINE_SIZE) as u64);
        if self.manager.has_overlay(opn_of(page)) {
            self.manager.resolve_read(opn_of(page), line, phys, &self.mem)
        } else {
            Ok(self.mem.read_line(phys))
        }
    }

    /// Simulates cache pressure: evicts all speculative lines to the
    /// Overlay Memory Store. In a cache-bound scheme this would abort
    /// the transaction; with overlays it is invisible (§5.3.3).
    ///
    /// # Errors
    ///
    /// Propagates OMS failures.
    pub fn evict_speculative_state(&mut self) -> PoResult<usize> {
        let mut evicted = 0;
        let touched: Vec<u64> = self.touched.iter().copied().collect();
        for page in touched {
            let cursor = &mut self.oms_cursor;
            let SpeculativeRegion { manager, mem, .. } = self;
            evicted += manager.evict_all(opn_of(page), mem, &mut |frames| {
                let chunk = MainMemAddr::new(*cursor * PAGE_SIZE as u64);
                *cursor += frames;
                Ok(chunk)
            })?;
        }
        self.stats.overflowed_lines.add(evicted as u64);
        Ok(evicted)
    }

    /// Commits the transaction: every overlay is merged into the
    /// committed state (the framework's *commit* action).
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] if no transaction is active.
    pub fn commit(&mut self) -> PoResult<()> {
        if self.state != SpeculationState::Active {
            return Err(PoError::Corrupted("commit without a transaction"));
        }
        let touched: Vec<u64> = self.touched.iter().copied().collect();
        for page in touched {
            if self.manager.has_overlay(opn_of(page)) {
                let frame = self.frame(page);
                self.manager.commit(opn_of(page), frame, &mut self.mem)?;
            }
        }
        self.state = SpeculationState::Idle;
        self.stats.commits.inc();
        Ok(())
    }

    /// Aborts the transaction: every overlay is discarded (the
    /// framework's *discard* action); committed state is untouched.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] if no transaction is active.
    pub fn abort(&mut self) -> PoResult<()> {
        if self.state != SpeculationState::Active {
            return Err(PoError::Corrupted("abort without a transaction"));
        }
        let touched: Vec<u64> = self.touched.iter().copied().collect();
        for page in touched {
            if self.manager.has_overlay(opn_of(page)) {
                self.manager.discard(opn_of(page))?;
            }
        }
        self.state = SpeculationState::Idle;
        self.stats.aborts.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_publishes_speculative_writes() {
        let mut r = SpeculativeRegion::new(4);
        r.write(0, 0, LineData::splat(1)).unwrap();
        r.begin().unwrap();
        r.spec_write(0, 0, LineData::splat(2)).unwrap();
        r.spec_write(1, 5, LineData::splat(3)).unwrap();
        r.commit().unwrap();
        assert_eq!(r.read(0, 0).unwrap(), LineData::splat(2));
        assert_eq!(r.read(1, 5).unwrap(), LineData::splat(3));
        assert_eq!(r.stats().commits.get(), 1);
    }

    #[test]
    fn abort_rolls_back_completely() {
        let mut r = SpeculativeRegion::new(4);
        r.write(0, 0, LineData::splat(1)).unwrap();
        r.begin().unwrap();
        r.spec_write(0, 0, LineData::splat(2)).unwrap();
        assert_eq!(r.read(0, 0).unwrap(), LineData::splat(2), "visible inside txn");
        r.abort().unwrap();
        assert_eq!(r.read(0, 0).unwrap(), LineData::splat(1), "rolled back");
    }

    #[test]
    fn unbounded_speculation_survives_eviction() {
        // Write more speculative lines than any L1 could hold, evict them
        // all to the OMS, and still commit correctly.
        let mut r = SpeculativeRegion::new(64);
        r.begin().unwrap();
        for page in 0..64u64 {
            for line in 0..32usize {
                r.spec_write(page, line, LineData::splat((page as u8) ^ (line as u8))).unwrap();
            }
        }
        let evicted = r.evict_speculative_state().unwrap();
        assert_eq!(evicted, 64 * 32, "all speculative lines must overflow to the OMS");
        // Data still visible and committable.
        assert_eq!(r.read(63, 31).unwrap(), LineData::splat(63 ^ 31));
        r.commit().unwrap();
        assert_eq!(r.read(63, 31).unwrap(), LineData::splat(63 ^ 31));
        assert_eq!(r.stats().overflowed_lines.get(), 64 * 32);
    }

    #[test]
    fn abort_after_eviction_also_works() {
        let mut r = SpeculativeRegion::new(8);
        r.write(3, 3, LineData::splat(9)).unwrap();
        r.begin().unwrap();
        for line in 0..64 {
            r.spec_write(3, line, LineData::splat(1)).unwrap();
        }
        r.evict_speculative_state().unwrap();
        r.abort().unwrap();
        assert_eq!(r.read(3, 3).unwrap(), LineData::splat(9));
        assert_eq!(r.read(3, 4).unwrap(), LineData::zeroed());
    }

    #[test]
    fn state_machine_guards() {
        let mut r = SpeculativeRegion::new(2);
        assert!(r.spec_write(0, 0, LineData::zeroed()).is_err());
        assert!(r.commit().is_err());
        assert!(r.abort().is_err());
        r.begin().unwrap();
        assert!(r.begin().is_err(), "no nesting");
        assert!(r.write(0, 0, LineData::zeroed()).is_err(), "no mixed writes");
        r.abort().unwrap();
        assert_eq!(r.state(), SpeculationState::Idle);
    }

    #[test]
    fn sequential_transactions_are_independent() {
        let mut r = SpeculativeRegion::new(2);
        r.begin().unwrap();
        r.spec_write(0, 0, LineData::splat(1)).unwrap();
        r.commit().unwrap();
        r.begin().unwrap();
        r.spec_write(0, 1, LineData::splat(2)).unwrap();
        r.abort().unwrap();
        assert_eq!(r.read(0, 0).unwrap(), LineData::splat(1));
        assert_eq!(r.read(0, 1).unwrap(), LineData::zeroed());
    }
}
