//! Fine-grained deduplication (§5.3.1).
//!
//! Gupta et al.'s Difference Engine observes that VMs running the same
//! guest OS hold many *mostly*-identical pages and can halve memory by
//! patching. The software version must apply a patch on every access;
//! with overlays, "cache lines that are different from the base page
//! can be stored in overlays, thereby enabling seamless access to
//! patched pages" — reads hit either the base page or the overlay with
//! no patching step.

use po_dram::DataStore;
use po_overlay::OverlayManager;
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::{Counter, LineData, MainMemAddr, Opn, PoResult};
use std::collections::HashMap;

/// Deduplication statistics.
#[derive(Clone, Debug, Default)]
pub struct DedupStats {
    /// Pages inserted.
    pub pages_inserted: Counter,
    /// Pages stored as base + delta overlay.
    pub pages_deduped: Counter,
    /// Pages stored as fresh base pages.
    pub base_pages: Counter,
    /// Delta lines stored in overlays.
    pub delta_lines: Counter,
}

/// The overlay-backed difference engine.
///
/// # Example
///
/// ```
/// use po_techniques::DifferenceEngine;
/// use po_types::{Asid, LineData, Opn, Vpn};
///
/// let mut engine = DifferenceEngine::new(48);
/// let mostly_a = [LineData::splat(0xAA); 64];
/// let mut variant = mostly_a;
/// variant[7] = LineData::splat(0xBB); // one line differs
///
/// let p1 = Opn::encode(Asid::new(1), Vpn::new(1));
/// let p2 = Opn::encode(Asid::new(1), Vpn::new(2));
/// engine.insert_page(p1, &mostly_a)?;
/// engine.insert_page(p2, &variant)?;
/// assert_eq!(engine.stats().base_pages.get(), 1);
/// assert_eq!(engine.stats().pages_deduped.get(), 1);
/// assert_eq!(engine.read_line(p2, 7)?, LineData::splat(0xBB));
/// assert_eq!(engine.read_line(p2, 8)?, LineData::splat(0xAA));
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Debug)]
pub struct DifferenceEngine {
    manager: OverlayManager,
    mem: DataStore,
    /// Base frames, in allocation order.
    bases: Vec<MainMemAddr>,
    /// Page → its base frame.
    page_base: HashMap<Opn, usize>,
    /// Minimum matching lines (of 64) required to dedup against a base.
    match_threshold: usize,
    next_frame: u64,
    /// Frame cursor for OMS chunks (kept in a disjoint region above the
    /// base pages).
    oms_cursor: u64,
    stats: DedupStats,
}

impl DifferenceEngine {
    /// Creates an engine; pages matching an existing base in at least
    /// `match_threshold` of their 64 lines are stored as deltas.
    pub fn new(match_threshold: usize) -> Self {
        Self {
            manager: OverlayManager::new(Default::default()),
            mem: DataStore::new(),
            bases: Vec::new(),
            page_base: HashMap::new(),
            match_threshold,
            next_frame: 0x1000,     // frames 0x1000+ for bases
            oms_cursor: 0x100_0000, // OMS chunks live far above the bases
            stats: DedupStats::default(),
        }
    }

    /// Returns statistics.
    pub fn stats(&self) -> &DedupStats {
        &self.stats
    }

    fn alloc_frame(&mut self) -> MainMemAddr {
        let addr = MainMemAddr::new(self.next_frame * PAGE_SIZE as u64);
        self.next_frame += 1;
        addr
    }

    fn base_line(&self, base: MainMemAddr, line: usize) -> LineData {
        self.mem.read_line(base.add((line * LINE_SIZE) as u64))
    }

    fn matching_lines(&self, base: MainMemAddr, data: &[LineData; LINES_PER_PAGE]) -> usize {
        (0..LINES_PER_PAGE).filter(|&l| self.base_line(base, l) == data[l]).count()
    }

    /// Inserts a page of data, deduplicating against the best existing
    /// base page if it matches well enough.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn insert_page(&mut self, opn: Opn, data: &[LineData; LINES_PER_PAGE]) -> PoResult<()> {
        self.stats.pages_inserted.inc();
        // Find the best base.
        let best = self
            .bases
            .iter()
            .enumerate()
            .map(|(i, &b)| (i, self.matching_lines(b, data)))
            .max_by_key(|&(_, m)| m);
        if let Some((base_idx, matches)) = best {
            if matches >= self.match_threshold {
                let base = self.bases[base_idx];
                // Store only the differing lines as an overlay delta.
                self.manager.create_overlay(opn)?;
                for (l, line_data) in data.iter().enumerate() {
                    if self.base_line(base, l) != *line_data {
                        self.manager.overlaying_write(opn, l, *line_data)?;
                        let cursor = &mut self.oms_cursor;
                        self.manager.evict_line(opn, l, &mut self.mem, &mut |frames| {
                            let chunk = MainMemAddr::new(*cursor * PAGE_SIZE as u64);
                            *cursor += frames;
                            Ok(chunk)
                        })?;
                        self.stats.delta_lines.inc();
                    }
                }
                self.page_base.insert(opn, base_idx);
                self.stats.pages_deduped.inc();
                return Ok(());
            }
        }
        // No good base: this page becomes a new base.
        let frame = self.alloc_frame();
        for (l, line) in data.iter().enumerate() {
            self.mem.write_line(frame.add((l * LINE_SIZE) as u64), *line);
        }
        self.bases.push(frame);
        self.page_base.insert(opn, self.bases.len() - 1);
        self.stats.base_pages.inc();
        Ok(())
    }

    /// Reads a line of an inserted page: from its delta overlay if the
    /// line diverged, else from the shared base page — the "seamless
    /// access to patched pages".
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] for unknown pages.
    pub fn read_line(&self, opn: Opn, line: usize) -> PoResult<LineData> {
        let base_idx =
            self.page_base.get(&opn).ok_or(po_types::PoError::Corrupted("page never inserted"))?;
        let base = self.bases[*base_idx];
        let phys = base.add((line * LINE_SIZE) as u64);
        if self.manager.has_overlay(opn) {
            self.manager.resolve_read(opn, line, phys, &self.mem)
        } else {
            Ok(self.mem.read_line(phys))
        }
    }

    /// Reconstructs a whole page (oracle checks).
    ///
    /// # Errors
    ///
    /// Same as [`DifferenceEngine::read_line`].
    pub fn read_page(&self, opn: Opn) -> PoResult<[LineData; LINES_PER_PAGE]> {
        let mut out = [LineData::zeroed(); LINES_PER_PAGE];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = self.read_line(opn, l)?;
        }
        Ok(out)
    }

    /// Total memory consumed: base pages plus overlay segments. The
    /// savings metric vs one-frame-per-page storage.
    pub fn memory_bytes(&self) -> u64 {
        self.bases.len() as u64 * PAGE_SIZE as u64 + self.manager.overlay_memory_bytes()
    }

    /// Bytes a non-deduplicating store would need for the same pages.
    pub fn naive_bytes(&self) -> u64 {
        self.stats.pages_inserted.get() * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::{Asid, Vpn};

    fn opn(v: u64) -> Opn {
        Opn::encode(Asid::new(1), Vpn::new(v))
    }

    fn page(fill: u8) -> [LineData; LINES_PER_PAGE] {
        [LineData::splat(fill); LINES_PER_PAGE]
    }

    #[test]
    fn identical_pages_share_one_base() {
        let mut e = DifferenceEngine::new(48);
        for i in 0..10 {
            e.insert_page(opn(i), &page(0x42)).unwrap();
        }
        assert_eq!(e.stats().base_pages.get(), 1);
        assert_eq!(e.stats().pages_deduped.get(), 9);
        assert_eq!(e.stats().delta_lines.get(), 0);
        assert!(e.memory_bytes() < e.naive_bytes() / 5);
    }

    #[test]
    fn similar_pages_store_only_deltas() {
        let mut e = DifferenceEngine::new(48);
        e.insert_page(opn(0), &page(1)).unwrap();
        let mut variant = page(1);
        variant[3] = LineData::splat(9);
        variant[60] = LineData::splat(8);
        e.insert_page(opn(1), &variant).unwrap();
        assert_eq!(e.stats().delta_lines.get(), 2);
        assert_eq!(e.read_line(opn(1), 3).unwrap(), LineData::splat(9));
        assert_eq!(e.read_line(opn(1), 60).unwrap(), LineData::splat(8));
        assert_eq!(e.read_line(opn(1), 0).unwrap(), LineData::splat(1));
        // The original is untouched.
        assert_eq!(e.read_line(opn(0), 3).unwrap(), LineData::splat(1));
    }

    #[test]
    fn dissimilar_pages_get_their_own_base() {
        let mut e = DifferenceEngine::new(48);
        e.insert_page(opn(0), &page(1)).unwrap();
        e.insert_page(opn(1), &page(2)).unwrap();
        assert_eq!(e.stats().base_pages.get(), 2);
        assert_eq!(e.stats().pages_deduped.get(), 0);
    }

    #[test]
    fn reconstruction_matches_original_exactly() {
        let mut e = DifferenceEngine::new(32);
        let mut original = page(7);
        for l in (0..LINES_PER_PAGE).step_by(5) {
            original[l] = LineData::splat(l as u8);
        }
        e.insert_page(opn(0), &page(7)).unwrap();
        e.insert_page(opn(1), &original).unwrap();
        assert_eq!(e.read_page(opn(1)).unwrap(), original);
    }

    #[test]
    fn threshold_controls_dedup_aggressiveness() {
        // 32 differing lines: dedup at threshold 16, not at 48.
        let mut variant = page(1);
        for (l, v) in variant.iter_mut().take(32).enumerate() {
            *v = LineData::splat(200 + l as u8);
        }
        let mut strict = DifferenceEngine::new(48);
        strict.insert_page(opn(0), &page(1)).unwrap();
        strict.insert_page(opn(1), &variant).unwrap();
        assert_eq!(strict.stats().base_pages.get(), 2);

        let mut loose = DifferenceEngine::new(16);
        loose.insert_page(opn(0), &page(1)).unwrap();
        loose.insert_page(opn(1), &variant).unwrap();
        assert_eq!(loose.stats().base_pages.get(), 1);
        assert_eq!(loose.stats().delta_lines.get(), 32);
        assert_eq!(loose.read_page(opn(1)).unwrap(), variant);
    }

    #[test]
    fn memory_savings_track_similarity() {
        // 50 pages, each differing from the base in 2 lines: the paper's
        // VM-fleet scenario. Savings should approach the ~50% Difference
        // Engine reports.
        let mut e = DifferenceEngine::new(48);
        e.insert_page(opn(0), &page(5)).unwrap();
        for i in 1..50 {
            let mut v = page(5);
            v[(i % 64) as usize] = LineData::splat(i as u8);
            e.insert_page(opn(i), &v).unwrap();
        }
        let ratio = e.memory_bytes() as f64 / e.naive_bytes() as f64;
        assert!(ratio < 0.5, "dedup ratio {ratio}");
    }
}
