//! Fine-grained metadata management (§5.3.4).
//!
//! Tools like memcheck, taint tracking and fine-grained protection need
//! per-word metadata. Prior proposals add metadata-specific hardware;
//! with overlays, "the Overlay Address Space serves as shadow memory
//! for the virtual address space": metadata for a page lives in that
//! page's overlay, accessed with dedicated *metadata load / metadata
//! store* operations while normal loads and stores see only the data.

use po_dram::DataStore;
use po_overlay::OverlayManager;
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{Asid, LineData, MainMemAddr, Opn, PoResult, VirtAddr};

/// Bytes of metadata per 8-byte word (one tag byte per word here; the
/// mechanism generalizes to any per-word width).
pub const META_BYTES_PER_WORD: usize = 1;

/// Shadow memory built on the overlay address space.
///
/// Data lives in ordinary memory; each page's *overlay* holds the
/// page's metadata instead of alternate data. `metadata_*` operations
/// access the overlay; plain `load`/`store` access the data — exactly
/// the split the paper describes (new `metadata load` / `metadata
/// store` instructions).
///
/// # Example
///
/// ```
/// use po_techniques::ShadowMemory;
/// use po_types::VirtAddr;
///
/// let mut shadow = ShadowMemory::new();
/// let addr = VirtAddr::new(0x1000);
/// shadow.store(addr, 0xDEAD_BEEF)?;
/// shadow.metadata_store(addr, 0x1)?; // taint the word
/// assert_eq!(shadow.load(addr)?, 0xDEAD_BEEF);
/// assert_eq!(shadow.metadata_load(addr)?, 0x1);
/// // Untainted neighbours read metadata 0.
/// assert_eq!(shadow.metadata_load(VirtAddr::new(0x1008))?, 0);
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Debug)]
pub struct ShadowMemory {
    manager: OverlayManager,
    mem: DataStore,
}

const ASID: u16 = 3;

fn opn_of(va: VirtAddr) -> Opn {
    Opn::encode(Asid::new(ASID), va.vpn())
}

fn data_addr(va: VirtAddr) -> MainMemAddr {
    // Identity data mapping for this self-contained tool.
    MainMemAddr::new(va.raw())
}

impl ShadowMemory {
    /// Creates an empty shadow memory (all data and metadata zero).
    pub fn new() -> Self {
        Self { manager: OverlayManager::new(Default::default()), mem: DataStore::new() }
    }

    /// Stores a 64-bit data word (a normal store: does not touch
    /// metadata).
    ///
    /// # Errors
    ///
    /// Currently infallible; mirrors the fallible metadata path.
    pub fn store(&mut self, va: VirtAddr, value: u64) -> PoResult<()> {
        let addr = data_addr(va);
        let mut line = self.mem.read_line(addr.line_base());
        let off = ((va.raw() as usize) % LINE_SIZE) & !7;
        line.as_mut_bytes()[off..off + 8].copy_from_slice(&value.to_le_bytes());
        self.mem.write_line(addr.line_base(), line);
        Ok(())
    }

    /// Loads a 64-bit data word.
    ///
    /// # Errors
    ///
    /// Currently infallible.
    pub fn load(&self, va: VirtAddr) -> PoResult<u64> {
        let addr = data_addr(va);
        let line = self.mem.read_line(addr.line_base());
        let off = ((va.raw() as usize) % LINE_SIZE) & !7;
        let mut b = [0u8; 8];
        b.copy_from_slice(&line.as_bytes()[off..off + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// `metadata store`: writes the tag byte for the word at `va` into
    /// the page's shadow overlay.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn metadata_store(&mut self, va: VirtAddr, tag: u8) -> PoResult<()> {
        let opn = opn_of(va);
        let line = va.line_in_page();
        let word = (va.raw() as usize % LINE_SIZE) / 8;
        let current = self.metadata_line(va)?;
        let mut data = current;
        data.as_mut_bytes()[word * META_BYTES_PER_WORD] = tag;
        self.manager.overlaying_write(opn, line, data)
    }

    /// `metadata load`: reads the tag byte for the word at `va`.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn metadata_load(&self, va: VirtAddr) -> PoResult<u8> {
        let word = (va.raw() as usize % LINE_SIZE) / 8;
        Ok(self.metadata_line(va)?.as_bytes()[word * META_BYTES_PER_WORD])
    }

    fn metadata_line(&self, va: VirtAddr) -> PoResult<LineData> {
        let opn = opn_of(va);
        let line = va.line_in_page();
        match self.manager.obitvec(opn) {
            Ok(v) if v.contains(line) => self.manager.read_line(opn, line, &self.mem),
            _ => Ok(LineData::zeroed()), // no metadata yet: clean
        }
    }

    /// Clears all metadata of the page containing `va` in one action
    /// (the framework's *discard*), e.g. on free().
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn clear_page_metadata(&mut self, va: VirtAddr) -> PoResult<()> {
        let opn = opn_of(va);
        if self.manager.has_overlay(opn) {
            self.manager.discard(opn)?;
        }
        Ok(())
    }

    /// Memory used for metadata: proportional to tagged lines, not to
    /// the data footprint — the advantage over flat shadow memory, which
    /// would shadow every page.
    pub fn metadata_memory_bytes(&self) -> u64 {
        self.manager.overlay_memory_bytes()
            + self.manager.resident_lines() as u64 * LINE_SIZE as u64
    }

    /// A flat shadow scheme's cost for `data_pages` of data at one tag
    /// byte per word: `data_pages * PAGE_SIZE / 8`.
    pub fn flat_shadow_bytes(data_pages: u64) -> u64 {
        data_pages * (PAGE_SIZE / 8) as u64
    }

    // ------------------------------------------------------------------
    // Word-granularity protection (the Mondrian-style application the
    // paper lists under fine-grained metadata: "fine-grained protection
    // [59]").
    // ------------------------------------------------------------------

    /// Sets the protection of the word at `va`.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn protect_word(&mut self, va: VirtAddr, prot: WordProtection) -> PoResult<()> {
        self.metadata_store(va, prot.to_tag())
    }

    /// Reads the protection of the word at `va` (read-write by default).
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn word_protection(&self, va: VirtAddr) -> PoResult<WordProtection> {
        Ok(WordProtection::from_tag(self.metadata_load(va)?))
    }

    /// A load that honors word-granularity protection.
    ///
    /// # Errors
    ///
    /// [`po_types::PoError::ProtectionViolation`] if the word is
    /// [`WordProtection::NoAccess`].
    pub fn checked_load(&self, va: VirtAddr) -> PoResult<u64> {
        match self.word_protection(va)? {
            WordProtection::NoAccess => Err(po_types::PoError::ProtectionViolation(va)),
            _ => self.load(va),
        }
    }

    /// A store that honors word-granularity protection.
    ///
    /// # Errors
    ///
    /// [`po_types::PoError::ProtectionViolation`] unless the word is
    /// [`WordProtection::ReadWrite`].
    pub fn checked_store(&mut self, va: VirtAddr, value: u64) -> PoResult<()> {
        match self.word_protection(va)? {
            WordProtection::ReadWrite => self.store(va, value),
            _ => Err(po_types::PoError::ProtectionViolation(va)),
        }
    }
}

/// Word-granularity protection domains encoded in the shadow tag's low
/// bits (tag values above leave room for tool-specific metadata in the
/// remaining bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordProtection {
    /// Loads and stores allowed (tag 0 — the clean default).
    ReadWrite,
    /// Loads allowed, stores fault.
    ReadOnly,
    /// Any access faults (guard words, redzones).
    NoAccess,
}

impl WordProtection {
    fn to_tag(self) -> u8 {
        match self {
            WordProtection::ReadWrite => 0,
            WordProtection::ReadOnly => 1,
            WordProtection::NoAccess => 2,
        }
    }

    fn from_tag(tag: u8) -> Self {
        match tag & 0x3 {
            1 => WordProtection::ReadOnly,
            2 => WordProtection::NoAccess,
            _ => WordProtection::ReadWrite,
        }
    }
}

impl Default for ShadowMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_and_metadata_are_independent() {
        let mut s = ShadowMemory::new();
        let a = VirtAddr::new(0x2000);
        s.store(a, 42).unwrap();
        assert_eq!(s.metadata_load(a).unwrap(), 0, "stores don't create metadata");
        s.metadata_store(a, 7).unwrap();
        assert_eq!(s.load(a).unwrap(), 42, "metadata stores don't clobber data");
        assert_eq!(s.metadata_load(a).unwrap(), 7);
    }

    #[test]
    fn per_word_granularity() {
        let mut s = ShadowMemory::new();
        // Tag alternating words in one line.
        for w in (0..8).step_by(2) {
            s.metadata_store(VirtAddr::new(0x3000 + w * 8), 0xF).unwrap();
        }
        for w in 0..8u64 {
            let expect = if w % 2 == 0 { 0xF } else { 0 };
            assert_eq!(s.metadata_load(VirtAddr::new(0x3000 + w * 8)).unwrap(), expect, "word {w}");
        }
    }

    #[test]
    fn taint_propagation_example() {
        // A tiny taint tracker: dst tag = src tag on copy.
        let mut s = ShadowMemory::new();
        let src = VirtAddr::new(0x4000);
        let dst = VirtAddr::new(0x8000);
        s.store(src, 1234).unwrap();
        s.metadata_store(src, 1).unwrap(); // tainted input
        let (v, t) = (s.load(src).unwrap(), s.metadata_load(src).unwrap());
        s.store(dst, v).unwrap();
        s.metadata_store(dst, t).unwrap();
        assert_eq!(s.metadata_load(dst).unwrap(), 1, "taint must flow");
    }

    #[test]
    fn clear_page_metadata_resets() {
        let mut s = ShadowMemory::new();
        let a = VirtAddr::new(0x5008);
        s.metadata_store(a, 3).unwrap();
        s.clear_page_metadata(a).unwrap();
        assert_eq!(s.metadata_load(a).unwrap(), 0);
    }

    #[test]
    fn metadata_memory_is_proportional_to_tagged_lines() {
        let mut s = ShadowMemory::new();
        // Tag one word in each of 4 pages out of a 1024-page dataset.
        for p in 0..4u64 {
            s.metadata_store(VirtAddr::new(p * 4096), 1).unwrap();
        }
        let overlay_cost = s.metadata_memory_bytes();
        let flat_cost = ShadowMemory::flat_shadow_bytes(1024);
        assert!(
            overlay_cost * 100 < flat_cost,
            "overlay shadow ({overlay_cost}) must be far below flat shadow ({flat_cost})"
        );
    }

    #[test]
    fn word_protection_guards_accesses() {
        let mut s = ShadowMemory::new();
        let guard = VirtAddr::new(0x7000);
        let ro = VirtAddr::new(0x7008);
        let rw = VirtAddr::new(0x7010);
        s.store(ro, 42).unwrap();
        s.protect_word(guard, WordProtection::NoAccess).unwrap();
        s.protect_word(ro, WordProtection::ReadOnly).unwrap();

        // Guard word: both directions fault.
        assert!(matches!(s.checked_load(guard), Err(po_types::PoError::ProtectionViolation(_))));
        assert!(s.checked_store(guard, 1).is_err());
        // Read-only word: load ok, store faults, data intact.
        assert_eq!(s.checked_load(ro).unwrap(), 42);
        assert!(s.checked_store(ro, 1).is_err());
        assert_eq!(s.load(ro).unwrap(), 42);
        // Untouched word: fully accessible.
        s.checked_store(rw, 9).unwrap();
        assert_eq!(s.checked_load(rw).unwrap(), 9);
    }

    #[test]
    fn redzone_example_catches_overflow() {
        // Classic redzone: guard words around an 8-word buffer.
        let mut s = ShadowMemory::new();
        let base = 0x9000u64;
        s.protect_word(VirtAddr::new(base - 8), WordProtection::NoAccess).unwrap();
        s.protect_word(VirtAddr::new(base + 64), WordProtection::NoAccess).unwrap();
        for i in 0..8u64 {
            s.checked_store(VirtAddr::new(base + i * 8), i).unwrap();
        }
        // The 9th write walks off the end and trips the redzone.
        assert!(s.checked_store(VirtAddr::new(base + 64), 99).is_err());
    }

    #[test]
    fn protection_roundtrips_through_tags() {
        for prot in [WordProtection::ReadWrite, WordProtection::ReadOnly, WordProtection::NoAccess]
        {
            assert_eq!(WordProtection::from_tag(prot.to_tag()), prot);
        }
    }

    #[test]
    fn metadata_across_many_lines_of_a_page() {
        let mut s = ShadowMemory::new();
        for line in 0..64u64 {
            s.metadata_store(VirtAddr::new(0x10_000 + line * 64), line as u8).unwrap();
        }
        for line in 0..64u64 {
            assert_eq!(s.metadata_load(VirtAddr::new(0x10_000 + line * 64)).unwrap(), line as u8);
        }
    }
}
