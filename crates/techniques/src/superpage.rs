//! Flexible super-pages (§5.3.5).
//!
//! Super-pages cut TLB misses but freeze 2 MB of mapping in one entry —
//! no OS today shares a super-page copy-on-write. The paper applies
//! overlays "at higher-level page table entries": the 64-bit OBitVector
//! divides a 2 MB super-page into 64 segments of 8 pages (32 KB) each,
//! and individual segments can be remapped, copied on write, or given
//! their own protection while the rest of the super-page keeps its one
//! TLB entry.

use po_types::geometry::PAGE_SIZE;
use po_types::{OBitVector, PoError, PoResult, Ppn, VirtAddr, Vpn};
use po_vm::{FrameAllocator, SuperPageMapping, SUPERPAGE_PAGES};

/// Pages per overlay segment of a super-page (512 pages / 64 bits).
pub const PAGES_PER_SEGMENT: usize = SUPERPAGE_PAGES / 64;

/// Per-segment protection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentProtection {
    /// Reads and writes allowed.
    ReadWrite,
    /// Writes fault (or trigger segment copy-on-write).
    ReadOnly,
}

/// A super-page whose segments can be individually remapped/protected.
///
/// # Example
///
/// ```
/// use po_techniques::FlexSuperPage;
/// use po_types::{Ppn, Vpn};
/// use po_vm::FrameAllocator;
///
/// let mut alloc = FrameAllocator::new(4096);
/// let base = alloc.alloc_contiguous(512)?;
/// let mut sp = FlexSuperPage::new(Vpn::new(0), base).unwrap();
/// // Share it copy-on-write, then write one page: only that page's
/// // 32 KB segment is copied.
/// sp.mark_cow();
/// let copied = sp.write_page(Vpn::new(5), &mut alloc)?;
/// assert_eq!(copied, 8); // one segment = 8 pages
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FlexSuperPage {
    mapping: SuperPageMapping,
    /// Segments remapped away from the contiguous base (OBitVector at
    /// the PMD level).
    seg_bitvec: OBitVector,
    /// Remap target for each segment (base PPN of its 8 frames).
    seg_remap: [Option<Ppn>; 64],
    /// Per-segment protection.
    seg_prot: [SegmentProtection; 64],
    /// Whole-super-page copy-on-write mode.
    cow: bool,
}

impl FlexSuperPage {
    /// Creates a flexible super-page over an aligned 2 MB mapping.
    /// Returns `None` on misalignment (see [`SuperPageMapping::new`]).
    pub fn new(base_vpn: Vpn, base_ppn: Ppn) -> Option<Self> {
        Some(Self {
            mapping: SuperPageMapping::new(base_vpn, base_ppn)?,
            seg_bitvec: OBitVector::EMPTY,
            seg_remap: [None; 64],
            seg_prot: [SegmentProtection::ReadWrite; 64],
            cow: false,
        })
    }

    /// Marks the whole super-page copy-on-write (e.g. after sharing it
    /// with another process) — the case no conventional system supports
    /// without splintering the mapping.
    pub fn mark_cow(&mut self) {
        self.cow = true;
        self.seg_prot = [SegmentProtection::ReadOnly; 64];
    }

    /// The OBitVector over segments (diagnostics/TLB model).
    pub fn seg_bitvec(&self) -> OBitVector {
        self.seg_bitvec
    }

    fn segment_of(&self, vpn: Vpn) -> PoResult<(usize, usize)> {
        let idx = self.mapping.index_of(vpn).ok_or(PoError::Unmapped(vpn.base()))?;
        Ok((idx / PAGES_PER_SEGMENT, idx % PAGES_PER_SEGMENT))
    }

    /// Translates a page through the flexible mapping: remapped segments
    /// override the contiguous base.
    ///
    /// # Errors
    ///
    /// [`PoError::Unmapped`] outside the super-page.
    pub fn translate(&self, vpn: Vpn) -> PoResult<Ppn> {
        let (seg, within) = self.segment_of(vpn)?;
        if self.seg_bitvec.contains(seg) {
            let base = self.seg_remap[seg]
                .ok_or(PoError::Corrupted("segment bit set without a remap target"))?;
            Ok(Ppn::new(base.raw() + within as u64))
        } else {
            self.mapping.translate(vpn).ok_or(PoError::Unmapped(vpn.base()))
        }
    }

    /// Protection of the segment containing `vpn`.
    ///
    /// # Errors
    ///
    /// [`PoError::Unmapped`] outside the super-page.
    pub fn protection(&self, vpn: Vpn) -> PoResult<SegmentProtection> {
        let (seg, _) = self.segment_of(vpn)?;
        Ok(self.seg_prot[seg])
    }

    /// Sets the protection of one 32 KB segment — "multiple protection
    /// domains within a super-page".
    ///
    /// # Errors
    ///
    /// [`PoError::Unmapped`] outside the super-page.
    pub fn protect_segment(&mut self, vpn: Vpn, prot: SegmentProtection) -> PoResult<()> {
        let (seg, _) = self.segment_of(vpn)?;
        self.seg_prot[seg] = prot;
        Ok(())
    }

    /// Handles a write to `vpn`: if its segment is CoW-protected, only
    /// that segment (8 pages) is copied and remapped — not the whole
    /// 2 MB page. Returns the number of pages copied (0 if the segment
    /// was already private/writable).
    ///
    /// # Errors
    ///
    /// [`PoError::Unmapped`] outside the super-page;
    /// [`PoError::ProtectionViolation`] on a write to a read-only
    /// segment when not in CoW mode; allocator exhaustion.
    pub fn write_page(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> PoResult<usize> {
        let (seg, _) = self.segment_of(vpn)?;
        match self.seg_prot[seg] {
            SegmentProtection::ReadWrite => Ok(0),
            SegmentProtection::ReadOnly if !self.cow => {
                Err(PoError::ProtectionViolation(vpn.base()))
            }
            SegmentProtection::ReadOnly => {
                // Segment-granularity copy-on-write: remap this segment
                // onto fresh frames and set its OBitVector bit.
                let new_base = alloc.alloc_contiguous(PAGES_PER_SEGMENT as u64)?;
                self.seg_remap[seg] = Some(new_base);
                self.seg_bitvec.set(seg);
                self.seg_prot[seg] = SegmentProtection::ReadWrite;
                Ok(PAGES_PER_SEGMENT)
            }
        }
    }

    /// Bytes of extra memory consumed by diverged segments (vs copying
    /// the whole super-page).
    pub fn diverged_bytes(&self) -> u64 {
        self.seg_bitvec.len() as u64 * (PAGES_PER_SEGMENT * PAGE_SIZE) as u64
    }

    /// Convenience: translate a full virtual address.
    ///
    /// # Errors
    ///
    /// [`PoError::Unmapped`] outside the super-page.
    pub fn translate_addr(&self, va: VirtAddr) -> PoResult<u64> {
        let ppn = self.translate(va.vpn())?;
        Ok(ppn.base().raw() | va.page_offset() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FlexSuperPage, FrameAllocator) {
        let mut alloc = FrameAllocator::new(1 << 16);
        let base = alloc.alloc_contiguous(512).unwrap();
        (FlexSuperPage::new(Vpn::new(0), base).unwrap(), alloc)
    }

    #[test]
    fn geometry() {
        assert_eq!(PAGES_PER_SEGMENT, 8); // 512 pages / 64 OBitVector bits
    }

    #[test]
    fn contiguous_translation_by_default() {
        let (sp, _) = setup();
        for vpn in [0u64, 100, 511] {
            let ppn = sp.translate(Vpn::new(vpn)).unwrap();
            assert_eq!(ppn.raw(), sp.translate(Vpn::new(0)).unwrap().raw() + vpn);
        }
        assert!(sp.translate(Vpn::new(512)).is_err());
    }

    #[test]
    fn segment_cow_copies_only_32kb() {
        let (mut sp, mut alloc) = setup();
        sp.mark_cow();
        let before = alloc.allocated();
        let copied = sp.write_page(Vpn::new(17), &mut alloc).unwrap();
        assert_eq!(copied, 8);
        assert_eq!(alloc.allocated() - before, 8, "one segment, not 512 pages");
        assert_eq!(sp.diverged_bytes(), 8 * 4096);
        // Pages in the written segment translate to the new frames…
        let seg_base_vpn = 16; // segment 2 covers vpns 16..24
        let p = sp.translate(Vpn::new(seg_base_vpn)).unwrap();
        assert_ne!(p.raw(), sp.translate(Vpn::new(0)).unwrap().raw() + seg_base_vpn);
        // …while other segments still use the shared base.
        let q = sp.translate(Vpn::new(100)).unwrap();
        assert_eq!(q.raw(), sp.translate(Vpn::new(0)).unwrap().raw() + 100);
    }

    #[test]
    fn second_write_to_same_segment_is_free() {
        let (mut sp, mut alloc) = setup();
        sp.mark_cow();
        sp.write_page(Vpn::new(17), &mut alloc).unwrap();
        let copied = sp.write_page(Vpn::new(18), &mut alloc).unwrap();
        assert_eq!(copied, 0, "vpn 18 is in the already-private segment");
    }

    #[test]
    fn per_segment_protection_domains() {
        let (mut sp, mut alloc) = setup();
        sp.protect_segment(Vpn::new(8), SegmentProtection::ReadOnly).unwrap();
        assert_eq!(sp.protection(Vpn::new(9)).unwrap(), SegmentProtection::ReadOnly);
        assert_eq!(sp.protection(Vpn::new(16)).unwrap(), SegmentProtection::ReadWrite);
        // Not CoW: the write must fault, not copy.
        assert!(matches!(
            sp.write_page(Vpn::new(9), &mut alloc),
            Err(PoError::ProtectionViolation(_))
        ));
    }

    #[test]
    fn translate_addr_keeps_offset() {
        let (sp, _) = setup();
        let pa = sp.translate_addr(VirtAddr::new(5 * 4096 + 0x123)).unwrap();
        assert_eq!(pa & 0xfff, 0x123);
    }

    #[test]
    fn misaligned_base_rejected() {
        assert!(FlexSuperPage::new(Vpn::new(3), Ppn::new(0)).is_none());
    }
}
