//! Efficient checkpointing (§5.3.2).
//!
//! HPC checkpointing is limited by the volume written to the backing
//! store. With overlays, "overlays could be used to capture all the
//! updates between two checkpoints. Only these overlays need to be
//! written to the backing store … The overlays are then committed, so
//! that each checkpoint captures precisely the delta since the last
//! checkpoint."

use po_dram::DataStore;
use po_overlay::OverlayManager;
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::{Counter, LineData, MainMemAddr, Opn, PoResult};
use std::collections::BTreeMap;

/// One serialized checkpoint: the per-page deltas captured since the
/// previous checkpoint.
#[derive(Clone, Debug, Default)]
pub struct CheckpointDelta {
    /// `(page, line) → data` of every line updated in the interval.
    pub lines: BTreeMap<(u64, usize), LineData>,
}

impl CheckpointDelta {
    /// Bytes this delta writes to the backing store: data lines plus one
    /// OBitVector word per dirty page.
    pub fn backing_bytes(&self) -> u64 {
        let pages: std::collections::BTreeSet<u64> = self.lines.keys().map(|&(p, _)| p).collect();
        self.lines.len() as u64 * LINE_SIZE as u64 + pages.len() as u64 * 8
    }
}

/// Checkpointing statistics.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStats {
    /// Checkpoints taken.
    pub checkpoints: Counter,
    /// Lines captured across all checkpoints.
    pub lines_captured: Counter,
    /// Bytes written to the backing store (overlay scheme).
    pub backing_bytes: Counter,
    /// Bytes a page-granularity scheme would have written.
    pub page_scheme_bytes: Counter,
}

/// An overlay-based checkpointing session over a region of pages.
///
/// # Example
///
/// ```
/// use po_techniques::Checkpointer;
/// use po_types::LineData;
///
/// let mut ck = Checkpointer::new(16); // 16-page region
/// ck.write(3, 5, LineData::splat(1))?;
/// let delta = ck.take_checkpoint()?;
/// assert_eq!(delta.lines.len(), 1);
/// // The delta is tiny compared to a page-granularity checkpoint.
/// assert!(delta.backing_bytes() < 4096);
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Debug)]
pub struct Checkpointer {
    manager: OverlayManager,
    mem: DataStore,
    pages: u64,
    /// Base frame of page `p` is `(BASE_FRAME + p) << 12`.
    checkpoints: Vec<CheckpointDelta>,
    oms_cursor: u64,
    stats: CheckpointStats,
}

const BASE_FRAME: u64 = 0x2000;
const ASID: u16 = 1;

fn opn_of(page: u64) -> Opn {
    Opn::encode(po_types::Asid::new(ASID), po_types::Vpn::new(page))
}

impl Checkpointer {
    /// Creates a session over `pages` pages of initially-zero state.
    pub fn new(pages: u64) -> Self {
        Self {
            manager: OverlayManager::new(Default::default()),
            mem: DataStore::new(),
            pages,
            checkpoints: Vec::new(),
            oms_cursor: 0x200_0000,
            stats: CheckpointStats::default(),
        }
    }

    /// Returns statistics.
    pub fn stats(&self) -> &CheckpointStats {
        &self.stats
    }

    /// Checkpoints taken so far.
    pub fn checkpoints(&self) -> &[CheckpointDelta] {
        &self.checkpoints
    }

    fn frame(&self, page: u64) -> MainMemAddr {
        MainMemAddr::new((BASE_FRAME + page) * PAGE_SIZE as u64)
    }

    /// Writes a line of application state; the update is captured in the
    /// page's overlay, not the base image.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures; panics if `page` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `page >= pages` or `line >= 64`.
    pub fn write(&mut self, page: u64, line: usize, data: LineData) -> PoResult<()> {
        assert!(page < self.pages, "page {page} out of range");
        self.manager.overlaying_write(opn_of(page), line, data)
    }

    /// Reads a line of current state (base image merged with pending
    /// updates).
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn read(&self, page: u64, line: usize) -> PoResult<LineData> {
        let phys = self.frame(page).add((line * LINE_SIZE) as u64);
        if self.manager.has_overlay(opn_of(page)) {
            self.manager.resolve_read(opn_of(page), line, phys, &self.mem)
        } else {
            Ok(self.mem.read_line(phys))
        }
    }

    /// Takes a checkpoint: serializes every captured overlay line to the
    /// backing store (returned and recorded), then *commits* the
    /// overlays into the base image (§4.3.4), so the next interval
    /// starts clean.
    ///
    /// # Errors
    ///
    /// Propagates overlay failures.
    pub fn take_checkpoint(&mut self) -> PoResult<CheckpointDelta> {
        let mut delta = CheckpointDelta::default();
        let opns: Vec<(u64, Opn)> = (0..self.pages)
            .map(|p| (p, opn_of(p)))
            .filter(|(_, o)| self.manager.has_overlay(*o))
            .collect();
        for (page, opn) in opns {
            let obv = self.manager.obitvec(opn)?;
            for line in obv.iter() {
                let data = self.manager.read_line(opn, line, &self.mem)?;
                delta.lines.insert((page, line), data);
                self.stats.lines_captured.inc();
            }
            // Commit the overlay into the base image.
            let frame = self.frame(page);
            self.manager.commit(opn, frame, &mut self.mem)?;
            // A page-granularity checkpointer would write the whole page.
            self.stats.page_scheme_bytes.add(PAGE_SIZE as u64);
        }
        self.stats.backing_bytes.add(delta.backing_bytes());
        self.stats.checkpoints.inc();
        self.checkpoints.push(delta.clone());
        Ok(delta)
    }

    /// Reconstructs the state as of checkpoint `index` by replaying
    /// deltas onto a zero image — the recovery path.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn restore(&self, index: usize) -> Vec<[LineData; LINES_PER_PAGE]> {
        assert!(index < self.checkpoints.len(), "checkpoint {index} out of range");
        let mut image = vec![[LineData::zeroed(); LINES_PER_PAGE]; self.pages as usize];
        for ck in &self.checkpoints[..=index] {
            for (&(page, line), data) in &ck.lines {
                image[page as usize][line] = *data;
            }
        }
        image
    }

    /// Flushes cache-resident overlay lines to the OMS (models the
    /// eviction pressure between checkpoints; exercises lazy
    /// allocation).
    ///
    /// # Errors
    ///
    /// Propagates OMS failures.
    pub fn flush_to_oms(&mut self) -> PoResult<()> {
        let opns: Vec<Opn> =
            (0..self.pages).map(opn_of).filter(|o| self.manager.has_overlay(*o)).collect();
        for opn in opns {
            let cursor = &mut self.oms_cursor;
            let Checkpointer { manager, mem, .. } = self;
            manager.evict_all(opn, mem, &mut |frames| {
                let chunk = MainMemAddr::new(*cursor * PAGE_SIZE as u64);
                *cursor += frames;
                Ok(chunk)
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_captures_only_updates() {
        let mut ck = Checkpointer::new(8);
        ck.write(0, 1, LineData::splat(1)).unwrap();
        ck.write(5, 60, LineData::splat(2)).unwrap();
        let delta = ck.take_checkpoint().unwrap();
        assert_eq!(delta.lines.len(), 2);
        assert_eq!(delta.lines[&(0, 1)], LineData::splat(1));
        assert_eq!(delta.lines[&(5, 60)], LineData::splat(2));
    }

    #[test]
    fn backing_volume_beats_page_granularity() {
        let mut ck = Checkpointer::new(64);
        // Touch one line in each of 32 pages.
        for p in 0..32 {
            ck.write(p, (p % 64) as usize, LineData::splat(p as u8)).unwrap();
        }
        ck.take_checkpoint().unwrap();
        let s = ck.stats();
        assert!(
            s.backing_bytes.get() * 10 < s.page_scheme_bytes.get(),
            "overlay checkpoint ({}) must be far below page scheme ({})",
            s.backing_bytes.get(),
            s.page_scheme_bytes.get()
        );
    }

    #[test]
    fn state_persists_across_checkpoints() {
        let mut ck = Checkpointer::new(4);
        ck.write(1, 2, LineData::splat(7)).unwrap();
        ck.take_checkpoint().unwrap();
        // After commit, the base image holds the data.
        assert_eq!(ck.read(1, 2).unwrap(), LineData::splat(7));
        // Next interval captures only new updates.
        ck.write(1, 3, LineData::splat(8)).unwrap();
        let d2 = ck.take_checkpoint().unwrap();
        assert_eq!(d2.lines.len(), 1);
        assert!(d2.lines.contains_key(&(1, 3)));
    }

    #[test]
    fn restore_replays_deltas_in_order() {
        let mut ck = Checkpointer::new(2);
        ck.write(0, 0, LineData::splat(1)).unwrap();
        ck.take_checkpoint().unwrap();
        ck.write(0, 0, LineData::splat(2)).unwrap();
        ck.write(1, 5, LineData::splat(3)).unwrap();
        ck.take_checkpoint().unwrap();
        let at0 = ck.restore(0);
        assert_eq!(at0[0][0], LineData::splat(1));
        assert_eq!(at0[1][5], LineData::zeroed());
        let at1 = ck.restore(1);
        assert_eq!(at1[0][0], LineData::splat(2));
        assert_eq!(at1[1][5], LineData::splat(3));
    }

    #[test]
    fn oms_flush_between_checkpoints_is_transparent() {
        let mut ck = Checkpointer::new(4);
        for l in 0..20 {
            ck.write(2, l, LineData::splat(l as u8)).unwrap();
        }
        ck.flush_to_oms().unwrap(); // lines leave the cache
        for l in 0..20usize {
            assert_eq!(ck.read(2, l).unwrap(), LineData::splat(l as u8));
        }
        let delta = ck.take_checkpoint().unwrap();
        assert_eq!(delta.lines.len(), 20);
    }

    #[test]
    fn empty_interval_checkpoints_nothing() {
        let mut ck = Checkpointer::new(4);
        let delta = ck.take_checkpoint().unwrap();
        assert!(delta.lines.is_empty());
        assert_eq!(delta.backing_bytes(), 0);
    }
}
