//! Functional backing store: sparse main-memory contents.
//!
//! Frames are materialized on first write; unwritten memory reads as
//! zeros. This lets the sparse-data-structure experiments (§5.2) model a
//! shared all-zero page without allocating gigabytes, and lets every
//! overlay state transition be validated against real bytes.

use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{LineData, MainMemAddr};
use std::collections::HashMap;

/// Sparse byte-addressable main memory.
///
/// # Example
///
/// ```
/// use po_dram::DataStore;
/// use po_types::{LineData, MainMemAddr};
///
/// let mut mem = DataStore::new();
/// assert!(mem.read_line(MainMemAddr::new(0x1000)).is_zero());
/// mem.write_line(MainMemAddr::new(0x1000), LineData::splat(7));
/// assert_eq!(mem.read_line(MainMemAddr::new(0x1000)), LineData::splat(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DataStore {
    frames: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl DataStore {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames that have been materialized by writes.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Reads the 64 B line containing `addr` (zeros if never written).
    pub fn read_line(&self, addr: MainMemAddr) -> LineData {
        let base = addr.line_base();
        match self.frames.get(&base.frame()) {
            Some(frame) => {
                let off = base.page_offset();
                let mut bytes = [0u8; LINE_SIZE];
                bytes.copy_from_slice(&frame[off..off + LINE_SIZE]);
                LineData::from_bytes(bytes)
            }
            None => LineData::zeroed(),
        }
    }

    /// Writes the 64 B line containing `addr`.
    pub fn write_line(&mut self, addr: MainMemAddr, data: LineData) {
        let base = addr.line_base();
        let frame = self.frames.entry(base.frame()).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        let off = base.page_offset();
        frame[off..off + LINE_SIZE].copy_from_slice(data.as_bytes());
    }

    /// Reads a single byte.
    pub fn read_byte(&self, addr: MainMemAddr) -> u8 {
        match self.frames.get(&addr.frame()) {
            Some(frame) => frame[addr.page_offset()],
            None => 0,
        }
    }

    /// Writes a single byte.
    pub fn write_byte(&mut self, addr: MainMemAddr, value: u8) {
        let frame = self.frames.entry(addr.frame()).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        frame[addr.page_offset()] = value;
    }

    /// Copies a whole 4 KB frame from `src` to `dst` (both page-aligned
    /// addresses), as the copy-on-write fault handler does.
    ///
    /// # Panics
    ///
    /// Panics if either address is not page-aligned.
    pub fn copy_frame(&mut self, src: MainMemAddr, dst: MainMemAddr) {
        assert_eq!(src.page_offset(), 0, "source must be page-aligned");
        assert_eq!(dst.page_offset(), 0, "destination must be page-aligned");
        match self.frames.get(&src.frame()).cloned() {
            Some(frame) => {
                self.frames.insert(dst.frame(), frame);
            }
            None => {
                // Copying an unmaterialized (all-zero) frame clears dst.
                self.frames.remove(&dst.frame());
            }
        }
    }

    /// Drops a frame, returning memory to the all-zero state.
    pub fn free_frame(&mut self, addr: MainMemAddr) {
        self.frames.remove(&addr.frame());
    }

    /// Serializes every materialized frame in sorted frame order
    /// (byte-stable regardless of hash-map iteration order).
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        let mut frames: Vec<u64> = self.frames.keys().copied().collect();
        frames.sort_unstable();
        w.put_len(frames.len());
        for f in frames {
            w.put_u64(f);
            w.put_bytes(&self.frames[&f][..]);
        }
    }

    /// Rebuilds a memory from [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation.
    pub fn decode_snapshot(r: &mut po_types::SnapshotReader) -> po_types::PoResult<Self> {
        let n = r.get_len()?;
        let mut frames = HashMap::with_capacity(n);
        for _ in 0..n {
            let f = r.get_u64()?;
            let bytes = r.get_bytes(PAGE_SIZE)?;
            let mut frame = Box::new([0u8; PAGE_SIZE]);
            frame.copy_from_slice(bytes);
            frames.insert(f, frame);
        }
        Ok(Self { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = DataStore::new();
        assert!(mem.read_line(MainMemAddr::new(0x0dea_d000)).is_zero());
        assert_eq!(mem.read_byte(MainMemAddr::new(12345)), 0);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn line_roundtrip() {
        let mut mem = DataStore::new();
        let addr = MainMemAddr::new(0x4_2040);
        mem.write_line(addr, LineData::splat(0x5a));
        assert_eq!(mem.read_line(addr), LineData::splat(0x5a));
        // Unaligned read within the same line sees the same data.
        assert_eq!(mem.read_line(MainMemAddr::new(0x4_2077)), LineData::splat(0x5a));
        assert_eq!(mem.resident_frames(), 1);
    }

    #[test]
    fn byte_roundtrip() {
        let mut mem = DataStore::new();
        mem.write_byte(MainMemAddr::new(0x1003), 0xEE);
        assert_eq!(mem.read_byte(MainMemAddr::new(0x1003)), 0xEE);
        assert_eq!(mem.read_byte(MainMemAddr::new(0x1004)), 0);
    }

    #[test]
    fn copy_frame_duplicates_contents() {
        let mut mem = DataStore::new();
        mem.write_byte(MainMemAddr::new(0x1000), 1);
        mem.write_byte(MainMemAddr::new(0x1fff), 2);
        mem.copy_frame(MainMemAddr::new(0x1000), MainMemAddr::new(0x9000));
        assert_eq!(mem.read_byte(MainMemAddr::new(0x9000)), 1);
        assert_eq!(mem.read_byte(MainMemAddr::new(0x9fff)), 2);
        // Copies are independent afterwards.
        mem.write_byte(MainMemAddr::new(0x9000), 9);
        assert_eq!(mem.read_byte(MainMemAddr::new(0x1000)), 1);
    }

    #[test]
    fn copy_of_zero_frame_zeroes_destination() {
        let mut mem = DataStore::new();
        mem.write_byte(MainMemAddr::new(0x9000), 7);
        mem.copy_frame(MainMemAddr::new(0x1000), MainMemAddr::new(0x9000));
        assert_eq!(mem.read_byte(MainMemAddr::new(0x9000)), 0);
    }

    #[test]
    fn free_frame_zeroes() {
        let mut mem = DataStore::new();
        mem.write_byte(MainMemAddr::new(0x2000), 3);
        mem.free_frame(MainMemAddr::new(0x2000));
        assert_eq!(mem.read_byte(MainMemAddr::new(0x2000)), 0);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn copy_frame_requires_alignment() {
        let mut mem = DataStore::new();
        mem.copy_frame(MainMemAddr::new(0x10), MainMemAddr::new(0x2000));
    }
}
