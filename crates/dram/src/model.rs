//! Bank-accurate DRAM timing model.
//!
//! Models the paper's memory system (Table 2): open-row policy, FR-FCFS
//! scheduling with posted writes through a 64-entry write buffer drained
//! when full, eight banks sharing one data bus.
//!
//! Requests are admitted one at a time by the memory controller model in
//! `po-sim`; memory-level parallelism arises from per-bank readiness
//! times and the shared-bus occupancy window, so independent requests to
//! different banks overlap while same-bank row conflicts serialize.

use crate::config::DramConfig;
use po_telemetry::{Event as TelemetryEvent, TelemetrySink};
use po_types::{Counter, Cycle, FaultInjector, FaultSite, MainMemAddr};

/// Outcome of a row-buffer lookup, used for stats and latency selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RowOutcome {
    Hit,
    Closed,
    Conflict,
}

#[derive(Clone, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// Statistics accumulated by the DRAM model.
#[derive(Clone, Debug, Default)]
pub struct DramStats {
    /// Demand + writeback reads serviced.
    pub reads: Counter,
    /// Writes accepted into the write buffer.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Accesses to a closed bank.
    pub row_closed: Counter,
    /// Row-buffer conflicts.
    pub row_conflicts: Counter,
    /// Write-buffer drains triggered by a full buffer.
    pub drains: Counter,
    /// Total bytes moved over the data bus.
    pub bus_bytes: Counter,
    /// Reads retried after an injected transient (correctable) error.
    pub read_retries: Counter,
}

impl DramStats {
    /// Row-buffer hit rate over all serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_closed.get() + self.row_conflicts.get();
        po_types::stats::ratio(self.row_hits.get(), total)
    }
}

/// The DDR3 timing model.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, Debug)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    /// Pending posted writes (line addresses) awaiting a drain.
    write_buffer: Vec<MainMemAddr>,
    stats: DramStats,
    faults: FaultInjector,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl DramModel {
    /// Creates a model with all banks closed.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![Bank::default(); config.banks];
        Self {
            config,
            banks,
            bus_free_at: 0,
            write_buffer: Vec::new(),
            stats: Stats::default(),
            faults: FaultInjector::none(),
            sink: TelemetrySink::noop(),
        }
    }

    /// Installs a fault injector; [`FaultSite::DramReadError`] is
    /// honored here.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Returns the configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn bank_and_row(&self, addr: MainMemAddr) -> (usize, u64) {
        // Row:Bank:Column interleaving — consecutive row-buffer-sized
        // chunks rotate across banks, rows stride across all banks.
        let chunk = addr.raw() / self.config.row_buffer_bytes as u64;
        let bank = (chunk % self.config.banks as u64) as usize;
        let row = chunk / self.config.banks as u64;
        (bank, row)
    }

    fn service(&mut self, now: Cycle, addr: MainMemAddr) -> Cycle {
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];
        let outcome = match bank.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        };
        let latency = match outcome {
            RowOutcome::Hit => {
                self.stats.row_hits.inc();
                self.config.row_hit_latency()
            }
            RowOutcome::Closed => {
                self.stats.row_closed.inc();
                self.config.row_closed_latency()
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts.inc();
                self.config.row_conflict_latency()
            }
        };
        bank.open_row = Some(row);
        // The access starts when both the bank and (for the data burst at
        // the tail of the access) the shared bus are available: the burst
        // window [done - t_burst, done] must begin after the previous
        // burst has released the bus.
        let start = now
            .max(bank.ready_at)
            .max((self.bus_free_at + self.config.t_burst).saturating_sub(latency));
        let done = start + latency;
        bank.ready_at = done;
        // The burst occupies the bus at the tail of the access.
        self.bus_free_at = done;
        self.stats.bus_bytes.add(po_types::geometry::LINE_SIZE as u64);
        done
    }

    /// Services a demand read of the 64 B line containing `addr`,
    /// returning the completion cycle.
    pub fn read(&mut self, now: Cycle, addr: MainMemAddr) -> Cycle {
        self.stats.reads.inc();
        let mut done = self.service(now, addr.line_base());
        if self.faults.fire(FaultSite::DramReadError) {
            // Transient correctable error: the controller re-issues the
            // read; the data is intact, only latency is lost.
            self.stats.read_retries.inc();
            self.sink.emit(|| TelemetryEvent::FaultInjected { site: "DramReadError" });
            done = self.service(done, addr.line_base());
        }
        if self.sink.is_active() {
            self.sink.count("dram.reads", 1);
            self.sink.emit(|| TelemetryEvent::DramAccess {
                addr: addr.raw(),
                write: false,
                latency: done.saturating_sub(now),
            });
            self.sink.observe("dram.read_latency", done.saturating_sub(now));
        }
        done
    }

    /// Posts a write of the line containing `addr` into the write buffer.
    ///
    /// Returns the cycle at which the write is *accepted* (usually `now`):
    /// writes are posted and leave the critical path, per the paper's
    /// FR-FCFS drain-when-full policy. If the buffer is full, it is
    /// drained first and the acceptance is delayed until the drain ends.
    pub fn write(&mut self, now: Cycle, addr: MainMemAddr) -> Cycle {
        self.stats.writes.inc();
        if self.sink.is_active() {
            self.sink.count("dram.writes", 1);
            self.sink.emit(|| TelemetryEvent::DramAccess {
                addr: addr.raw(),
                write: true,
                latency: 0,
            });
        }
        let mut t = now;
        if self.write_buffer.len() >= self.config.write_buffer_entries {
            t = self.drain(now);
        }
        self.write_buffer.push(addr.line_base());
        t
    }

    /// Drains every buffered write, returning the cycle at which the drain
    /// finishes. Invoked automatically when the buffer fills; callers may
    /// also force a drain (e.g. at a checkpoint boundary).
    pub fn drain(&mut self, now: Cycle) -> Cycle {
        if self.write_buffer.is_empty() {
            return now;
        }
        self.stats.drains.inc();
        let pending = std::mem::take(&mut self.write_buffer);
        let mut done = now;
        for addr in pending {
            done = self.service(done, addr);
        }
        done
    }

    /// Number of writes currently buffered.
    pub fn pending_writes(&self) -> usize {
        self.write_buffer.len()
    }

    /// Resets all statistics (bank and buffer state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Serializes bank state, bus occupancy, the write buffer (in
    /// order) and stats. The fault injector is snapshotted at machine
    /// level, not here.
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        for bank in &self.banks {
            match bank.open_row {
                None => w.put_bool(false),
                Some(row) => {
                    w.put_bool(true);
                    w.put_u64(row);
                }
            }
            w.put_u64(bank.ready_at);
        }
        w.put_u64(self.bus_free_at);
        w.put_len(self.write_buffer.len());
        for addr in &self.write_buffer {
            w.put_u64(addr.raw());
        }
        for c in [
            &self.stats.reads,
            &self.stats.writes,
            &self.stats.row_hits,
            &self.stats.row_closed,
            &self.stats.row_conflicts,
            &self.stats.drains,
            &self.stats.bus_bytes,
            &self.stats.read_retries,
        ] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a model with `config` from [`encode_snapshot`] bytes.
    /// The restored model carries an inert fault injector; install the
    /// machine's via [`DramModel::set_fault_injector`].
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation.
    pub fn decode_snapshot(
        config: DramConfig,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut model = Self::new(config);
        for bank in model.banks.iter_mut() {
            bank.open_row = if r.get_bool()? { Some(r.get_u64()?) } else { None };
            bank.ready_at = r.get_u64()?;
        }
        model.bus_free_at = r.get_u64()?;
        let n = r.get_len()?;
        model.write_buffer.reserve(n);
        for _ in 0..n {
            model.write_buffer.push(MainMemAddr::new(r.get_u64()?));
        }
        for c in [
            &mut model.stats.reads,
            &mut model.stats.writes,
            &mut model.stats.row_hits,
            &mut model.stats.row_closed,
            &mut model.stats.row_conflicts,
            &mut model.stats.drains,
            &mut model.stats.bus_bytes,
            &mut model.stats.read_retries,
        ] {
            c.add(r.get_u64()?);
        }
        Ok(model)
    }
}

// Private alias so the constructor reads naturally above.
type Stats = DramStats;

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramConfig::table2())
    }

    #[test]
    fn first_access_is_row_closed() {
        let mut m = model();
        let done = m.read(0, MainMemAddr::new(0));
        assert_eq!(done, m.config().row_closed_latency());
        assert_eq!(m.stats().row_closed.get(), 1);
    }

    #[test]
    fn same_row_hits() {
        let mut m = model();
        let t1 = m.read(0, MainMemAddr::new(0));
        let t2 = m.read(t1, MainMemAddr::new(64));
        assert_eq!(t2 - t1, m.config().row_hit_latency());
        assert_eq!(m.stats().row_hits.get(), 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut m = model();
        let row_bytes = m.config().row_buffer_bytes as u64;
        let banks = m.config().banks as u64;
        let t1 = m.read(0, MainMemAddr::new(0));
        // Same bank, different row: stride = banks * row_buffer.
        let t2 = m.read(t1, MainMemAddr::new(row_bytes * banks));
        assert_eq!(t2 - t1, m.config().row_conflict_latency());
        assert_eq!(m.stats().row_conflicts.get(), 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut m = model();
        let row_bytes = m.config().row_buffer_bytes as u64;
        // Issue two closed-bank reads at the same instant to two banks.
        let t1 = m.read(0, MainMemAddr::new(0));
        let t2 = m.read(0, MainMemAddr::new(row_bytes)); // next bank
                                                         // The second overlaps except for bus serialization: it must finish
                                                         // well before 2x the full closed latency.
        assert!(t2 < t1 + m.config().row_closed_latency());
        assert!(t2 > t1, "bus still serializes the bursts");
    }

    #[test]
    fn writes_are_posted_until_buffer_full() {
        let mut m = model();
        for i in 0..m.config().write_buffer_entries {
            let t = m.write(100, MainMemAddr::new((i * 64) as u64));
            assert_eq!(t, 100, "posted writes are accepted immediately");
        }
        assert_eq!(m.pending_writes(), m.config().write_buffer_entries);
        // The next write forces a drain.
        let t = m.write(100, MainMemAddr::new(1 << 20));
        assert!(t > 100, "drain delays acceptance");
        assert_eq!(m.stats().drains.get(), 1);
        assert_eq!(m.pending_writes(), 1);
    }

    #[test]
    fn explicit_drain_empties_buffer() {
        let mut m = model();
        m.write(0, MainMemAddr::new(0));
        m.write(0, MainMemAddr::new(64));
        let done = m.drain(0);
        assert!(done > 0);
        assert_eq!(m.pending_writes(), 0);
        // Draining an empty buffer is free.
        assert_eq!(m.drain(done), done);
    }

    #[test]
    fn row_hit_rate_reflects_locality() {
        let mut m = model();
        let mut t = 0;
        for i in 0..100u64 {
            t = m.read(t, MainMemAddr::new(i * 64)); // sequential: same row
        }
        assert!(m.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn bus_bytes_accumulate() {
        let mut m = model();
        let t = m.read(0, MainMemAddr::new(0));
        m.read(t, MainMemAddr::new(4096));
        assert_eq!(m.stats().bus_bytes.get(), 128);
    }
}
