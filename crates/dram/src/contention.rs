//! DRAM-bandwidth token bucket for multi-core contention.
//!
//! With one core the bank/bus model in [`crate::DramModel`] already
//! serializes bursts; with several cores issuing concurrently, total
//! line traffic can exceed the channel's sustainable bandwidth. This
//! bucket charges every line transfer a fixed slice of channel time
//! and delays a transfer that arrives while earlier slices are still
//! draining — the multi-core machine instantiates it only when more
//! than one core is configured, so single-core timing is untouched.
//!
//! Deterministic by construction: state is a single simulated-cycle
//! horizon advanced in the scheduler's interleaving order.

use po_types::Cycle;

/// Channel-bandwidth throttle shared by all cores.
#[derive(Clone, Debug)]
pub struct BandwidthBucket {
    /// Cycle at which the channel next has a free line slot.
    next_free: Cycle,
    /// Channel cycles one 64 B line transfer consumes.
    cycles_per_line: u64,
}

impl BandwidthBucket {
    /// A bucket granting one line transfer every `cycles_per_line`
    /// cycles of sustained load.
    pub fn new(cycles_per_line: u64) -> Self {
        Self { next_free: 0, cycles_per_line: cycles_per_line.max(1) }
    }

    /// Admits one line transfer at `now`; returns the delay before the
    /// channel can start it (0 under light load).
    pub fn admit(&mut self, now: Cycle) -> u64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.cycles_per_line;
        start - now
    }

    /// Serializes the horizon (the rate comes from config).
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        w.put_u64(self.next_free);
    }

    /// Rebuilds a bucket from [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation.
    pub fn decode_snapshot(
        cycles_per_line: u64,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut b = Self::new(cycles_per_line);
        b.next_free = r.get_u64()?;
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_is_free() {
        let mut b = BandwidthBucket::new(8);
        assert_eq!(b.admit(100), 0);
        assert_eq!(b.admit(200), 0, "horizon passed; no backlog");
    }

    #[test]
    fn burst_queues_on_the_channel() {
        let mut b = BandwidthBucket::new(8);
        assert_eq!(b.admit(100), 0);
        assert_eq!(b.admit(100), 8);
        assert_eq!(b.admit(100), 16);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut b = BandwidthBucket::new(8);
        b.admit(100);
        b.admit(100);
        let mut w = po_types::SnapshotWriter::new();
        b.encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = po_types::SnapshotReader::new(&bytes);
        let mut b2 = BandwidthBucket::decode_snapshot(8, &mut r).unwrap();
        assert_eq!(b2.admit(100), b.admit(100));
    }
}
