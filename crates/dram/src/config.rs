//! DRAM configuration (Table 2 of the paper).

/// Timing and geometry parameters of the main memory.
///
/// Defaults model the paper's DDR3-1066 part behind a 2.67 GHz core:
/// the memory bus runs at 533 MHz (1066 MT/s), i.e. one memory-bus clock
/// is ~5 CPU cycles; DDR3-1066 CL7 timing gives tCAS = tRCD = tRP = 7
/// memory clocks (35 CPU cycles each).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (Table 2: 8 banks, 1 channel, 1 rank).
    pub banks: usize,
    /// Row-buffer size in bytes (Table 2: 8 KB).
    pub row_buffer_bytes: usize,
    /// Column-access latency (CAS) in CPU cycles.
    pub t_cas: u64,
    /// Row-activate latency (RAS-to-CAS) in CPU cycles.
    pub t_rcd: u64,
    /// Precharge latency in CPU cycles.
    pub t_rp: u64,
    /// Data-bus occupancy of one 64 B burst in CPU cycles
    /// (burst length 8 on an 8 B bus = 4 memory clocks = 20 CPU cycles).
    pub t_burst: u64,
    /// Capacity of the write buffer in entries (Table 2: 64, drained when
    /// full — FR-FCFS "drain when full" policy).
    pub write_buffer_entries: usize,
    /// Fixed controller-side overhead per request (queueing, command
    /// serialization) in CPU cycles.
    pub t_controller: u64,
}

impl DramConfig {
    /// The Table 2 configuration: DDR3-1066, 1 channel / 1 rank / 8 banks,
    /// 8 B bus, burst length 8, 8 KB row buffer, 64-entry write buffer.
    pub fn table2() -> Self {
        Self {
            banks: 8,
            row_buffer_bytes: 8 * 1024,
            t_cas: 35,
            t_rcd: 35,
            t_rp: 35,
            t_burst: 20,
            write_buffer_entries: 64,
            t_controller: 20,
        }
    }

    /// Latency of a row-buffer hit (CAS + burst + controller).
    pub fn row_hit_latency(&self) -> u64 {
        self.t_controller + self.t_cas + self.t_burst
    }

    /// Latency of an access to a closed bank (activate + CAS + burst).
    pub fn row_closed_latency(&self) -> u64 {
        self.t_controller + self.t_rcd + self.t_cas + self.t_burst
    }

    /// Latency of a row-buffer conflict (precharge + activate + CAS +
    /// burst).
    pub fn row_conflict_latency(&self) -> u64 {
        self.t_controller + self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering() {
        let c = DramConfig::table2();
        assert!(c.row_hit_latency() < c.row_closed_latency());
        assert!(c.row_closed_latency() < c.row_conflict_latency());
    }

    #[test]
    fn table2_values() {
        let c = DramConfig::table2();
        assert_eq!(c.banks, 8);
        assert_eq!(c.row_buffer_bytes, 8192);
        assert_eq!(c.write_buffer_entries, 64);
    }
}
