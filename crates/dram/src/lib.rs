//! # po-dram — DDR3-1066 main-memory model
//!
//! The paper's evaluation (Table 2) couples the simulated core to a
//! DDR3-1066 DRAM with one channel, one rank, eight banks, an 8-byte data
//! bus, burst length 8 and an 8 KB row buffer, scheduled open-row
//! FR-FCFS with a 64-entry write buffer drained when full.
//!
//! This crate provides:
//!
//! * [`DramConfig`] — the timing/geometry parameters (defaults = Table 2),
//! * [`DramModel`] — a bank-accurate timing model: per-bank row-buffer
//!   state, activate/precharge/CAS timing, shared data-bus occupancy, and
//!   posted writes through a drain-when-full write buffer,
//! * [`DataStore`] — the *functional* backing store: a sparse map from
//!   main-memory frames to 4 KB byte arrays, so the rest of the system can
//!   move real data and be checked against flat-memory oracles.
//!
//! Timing and function are deliberately separate: [`DramModel`] computes
//! *when* a request completes, [`DataStore`] holds *what* the bytes are.
//!
//! # Example
//!
//! ```
//! use po_dram::{DramConfig, DramModel};
//! use po_types::MainMemAddr;
//!
//! let mut dram = DramModel::new(DramConfig::default());
//! let t1 = dram.read(0, MainMemAddr::new(0x0));      // row miss: activate+CAS
//! let t2 = dram.read(t1, MainMemAddr::new(0x40));    // same row: row hit
//! assert!(t2 - t1 < t1, "row hit is cheaper than the initial activate");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod contention;
pub mod model;
pub mod store;

pub use config::DramConfig;
pub use contention::BandwidthBucket;
pub use model::{DramModel, DramStats};
pub use store::DataStore;
