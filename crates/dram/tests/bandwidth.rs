//! DRAM behavioral tests: bandwidth ceilings and scheduling effects
//! that the Figure 8/9 analysis depends on (copy bandwidth, write-drain
//! interference).

use po_dram::{DramConfig, DramModel};
use po_types::MainMemAddr;

#[test]
fn bus_bounds_peak_bandwidth() {
    // However parallel the banks, N bursts cannot beat N * t_burst on
    // the shared bus.
    let config = DramConfig::table2();
    let mut dram = DramModel::new(config.clone());
    let n = 1024u64;
    let mut done_max = 0;
    for i in 0..n {
        // Stripe across banks for maximal parallelism.
        let addr = MainMemAddr::new(i * config.row_buffer_bytes as u64);
        done_max = done_max.max(dram.read(0, addr));
    }
    assert!(
        done_max >= n * config.t_burst,
        "{n} bursts in {done_max} cycles beats the bus ({} cycles/burst)",
        config.t_burst
    );
    // And with full bank parallelism it should be close to that bound.
    assert!(
        done_max < n * config.t_burst * 2,
        "bank-striped reads should be bus-limited, got {done_max}"
    );
}

#[test]
fn same_bank_conflicts_serialize() {
    let config = DramConfig::table2();
    let mut dram = DramModel::new(config.clone());
    let n = 64u64;
    let stride = config.row_buffer_bytes as u64 * config.banks as u64; // same bank, new row
    let mut done_max = 0;
    for i in 0..n {
        done_max = done_max.max(dram.read(0, MainMemAddr::new(i * stride)));
    }
    // Every access after the first is a row conflict on one bank.
    let floor = (n - 1) * config.row_conflict_latency();
    assert!(done_max >= floor, "conflict chain finished too fast: {done_max} < {floor}");
}

#[test]
fn page_copy_bandwidth_model() {
    // The CoW copy issues 64 reads at once; with 8 banks and an open-row
    // friendly layout, it should take far less than 64 serial accesses.
    let config = DramConfig::table2();
    let mut dram = DramModel::new(config.clone());
    let mut done_max = 0;
    for l in 0..64u64 {
        done_max = done_max.max(dram.read(0, MainMemAddr::new(0x10_0000 + l * 64)));
    }
    // A 4 KB page fits inside one 8 KB row: the copy streams out of a
    // single open row (row-buffer locality), paying one activate and
    // then row hits.
    let bound = config.row_closed_latency() + 64 * config.row_hit_latency();
    let serial_closed = 64 * config.row_closed_latency();
    assert!(done_max <= bound, "page copy took {done_max}, bound {bound}");
    assert!(done_max < serial_closed, "row-buffer locality must beat closed-row serial access");
    assert!(dram.stats().row_hit_rate() > 0.95, "copy must stream from one row");
}

#[test]
fn write_drain_blocks_subsequent_reads() {
    let config = DramConfig::table2();
    let mut dram = DramModel::new(config.clone());
    // Fill the write buffer exactly.
    for i in 0..config.write_buffer_entries as u64 {
        assert_eq!(dram.write(0, MainMemAddr::new(i * 64)), 0);
    }
    // The overflowing write triggers a drain...
    let t_after_drain = dram.write(0, MainMemAddr::new(1 << 22));
    assert!(t_after_drain > 0);
    // ...and a read issued "now" at cycle 0 sees busy banks.
    let read_done = dram.read(0, MainMemAddr::new(0));
    assert!(
        read_done > config.row_conflict_latency(),
        "read after a drain must observe bank occupancy, got {read_done}"
    );
}

#[test]
fn stats_reset_clears_counters_only() {
    let mut dram = DramModel::new(DramConfig::table2());
    let t = dram.read(0, MainMemAddr::new(0));
    dram.reset_stats();
    assert_eq!(dram.stats().reads.get(), 0);
    // Bank state persists: the next same-row access is still a row hit.
    dram.read(t, MainMemAddr::new(64));
    assert_eq!(dram.stats().row_hits.get(), 1);
}
