//! # po-mc — the multi-core timed machine
//!
//! A true multi-core execution layer over [`po_sim::Machine`]
//! (DESIGN.md §15). The machine already holds per-core out-of-order
//! windows and per-core TLBs behind shared caches, OMT, and DRAM; this
//! crate supplies the three things that make those cores a *system*:
//!
//! * **Deterministic interleaving** ([`sched`]) — per-core op streams
//!   merged by *simulated* time: the scheduler always runs the core
//!   whose retirement frontier is furthest behind (ties broken by core
//!   id), one quantum at a time, on a single host thread. Which host
//!   thread count drives the jobs around it therefore cannot change a
//!   single simulated cycle — the shard-determinism invariant extends
//!   to multi-core runs byte-for-byte.
//! * **Shared-resource contention** — with more than one core the
//!   machine arms an L3 bank queue and a DRAM-bandwidth token bucket
//!   (`po_cache::L3BankQueue`, `po_dram::BandwidthBucket`); stalls
//!   surface as the `Layer::Contention` CPI slice and the
//!   `contention_stall_cycles` counter. Single-core runs are
//!   byte-identical to the pre-multi-core machine.
//! * **Overlay coherence traffic** ([`workload`]) — the §4.3.3
//!   overlaying-read-exclusive request and single-line OBitVector
//!   update message now have observable cost: remote TLB copies are
//!   updated (counted in `coherence_obit_msgs`) or shot down
//!   (`coherence_invalidations`), and delivery stalls land in
//!   `coherence_stall_cycles`. The contended-fork workload makes all
//!   of it fire on purpose.
//!
//! The scheduler comes in two flavors: [`sched::run_interleaved`]
//! drives timed ops on a bare machine (bench workloads), and
//! [`sched::run_interleaved_harness`] drives full-grammar streams
//! through the differential harness, asserting spec refinement after
//! every applied op — so every scheduled quantum ends refinement-clean
//! by construction.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod sched;
pub mod workload;

pub use sched::{run_interleaved, run_interleaved_harness, CoreLane, McSchedule};
pub use workload::{
    build_core_streams, run_contended_fork, ContendedForkOutcome, ContendedForkSpec,
};
