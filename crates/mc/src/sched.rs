//! The deterministic multi-core scheduler.
//!
//! Cores are interleaved by **simulated cycle count**: each scheduling
//! round picks the unfinished core with the smallest
//! `(retirement frontier, core id)` key and runs one quantum of its
//! stream. That is exactly how concurrent cores make progress against
//! shared resources — the core that is behind in simulated time issues
//! next — and because the whole loop runs on one host thread over
//! plain data, the interleaving (and with it every latency, counter,
//! and snapshot byte) is a pure function of the streams and the
//! machine configuration.

use po_sim::runner::drive_ops;
use po_sim::sim_test::SimHarness;
use po_sim::stats::SimStats;
use po_sim::{Machine, TraceOp};
use po_types::{Asid, PoResult};

/// Per-core tally of a scheduled run.
#[derive(Clone, Debug, Default)]
pub struct CoreLane {
    /// Ops from this core's stream that were applied.
    pub ops_applied: u64,
    /// The core's retirement frontier when the run ended.
    pub cycles: u64,
    /// Instructions the core retired over the whole machine lifetime.
    pub instructions: u64,
}

/// What a scheduled multi-core run produced.
#[derive(Clone, Debug)]
pub struct McSchedule {
    /// Machine-stats *delta* over the run (counters included; cycles =
    /// slowest core's advance, instructions summed across cores).
    pub stats: SimStats,
    /// Per-core tallies, indexed by core id.
    pub per_core: Vec<CoreLane>,
    /// Scheduling quanta dispatched.
    pub quanta: u64,
}

/// Picks the next core to run: the unfinished core with the smallest
/// `(cycles, core id)` key, or `None` when every stream is exhausted.
fn next_core(machine: &Machine, cursors: &[usize], streams: &[Vec<TraceOp>]) -> Option<usize> {
    (0..streams.len())
        .filter(|&c| cursors[c] < streams[c].len())
        .min_by_key(|&c| (machine.core_cycles(c), c))
}

/// Runs one per-core stream of **timed ops** (`Compute`/`Load`/`Store`)
/// per core, interleaved by simulated time in quanta of `quantum_ops`
/// ops, all as process `asid`. `streams[c]` runs on core `c`; there
/// must be at most as many streams as configured cores.
///
/// # Errors
///
/// Propagates access faults, and rejects harness-level ops (they have
/// no issuing core — drive those through
/// [`run_interleaved_harness`]).
///
/// # Panics
///
/// Panics if `streams.len()` exceeds the configured core count.
pub fn run_interleaved(
    machine: &mut Machine,
    asid: Asid,
    streams: &[Vec<TraceOp>],
    quantum_ops: usize,
) -> PoResult<McSchedule> {
    let cores = machine.config().cores.max(1);
    assert!(streams.len() <= cores, "{} streams for a {cores}-core machine", streams.len());
    let quantum = quantum_ops.max(1);
    let before = machine.snapshot();
    let mut cursors = vec![0usize; streams.len()];
    let mut lanes = vec![CoreLane::default(); streams.len()];
    let mut quanta = 0u64;
    while let Some(core) = next_core(machine, &cursors, streams) {
        quanta += 1;
        let end = (cursors[core] + quantum).min(streams[core].len());
        for op in &streams[core][cursors[core]..end] {
            machine.execute_at_core(core, asid, op)?;
        }
        lanes[core].ops_applied += (end - cursors[core]) as u64;
        cursors[core] = end;
    }
    for (c, lane) in lanes.iter_mut().enumerate() {
        lane.cycles = machine.core_cycles(c);
        lane.instructions = machine.core_of(c).instructions();
    }
    let mut stats = machine.snapshot();
    stats.instructions -= before.instructions;
    stats.cycles -= before.cycles;
    Ok(McSchedule { stats, per_core: lanes, quanta })
}

/// [`run_interleaved`] through the differential harness: per-core
/// streams of **full-grammar** ops (fuzz/DST mixes), applied via
/// [`SimHarness::apply`] — which asserts spec refinement and machine
/// invariants after every op, so refinement holds at every quantum
/// boundary a fortiori. The harness's `current_core` is set to the
/// scheduled core before each quantum; `OnCore` ops inside a stream
/// still override it mid-quantum (they are part of the grammar).
///
/// Returns the quanta dispatched.
///
/// # Errors
///
/// A divergence, refinement violation, or unexpected machine failure
/// (a finding), prefixed with the core and stream position.
pub fn run_interleaved_harness(
    h: &mut SimHarness,
    streams: &[Vec<TraceOp>],
    quantum_ops: usize,
) -> Result<u64, String> {
    let cores = h.machine.config().cores.max(1);
    if streams.len() > cores {
        return Err(format!("{} streams for a {cores}-core machine", streams.len()));
    }
    let quantum = quantum_ops.max(1);
    let mut cursors = vec![0usize; streams.len()];
    let mut quanta = 0u64;
    while let Some(core) = next_core(&h.machine, &cursors, streams) {
        quanta += 1;
        h.current_core = core;
        let from = cursors[core];
        let end = (from + quantum).min(streams[core].len());
        drive_ops(
            h,
            &streams[core][from..end],
            from,
            &format!("core {core} "),
            |_, _| {},
            |h, i| match h.take_crashed() {
                Some(stage) => Err(format!(
                    "interior crash ({}) fired on core {core} at stream op {i} outside a \
                     crash-convergence runner",
                    stage.name()
                )),
                None => Ok(false),
            },
        )?;
        cursors[core] = end;
    }
    Ok(quanta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_sim::sim_test::generate_ops;
    use po_sim::SystemConfig;
    use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
    use po_types::{VirtAddr, Vpn};

    fn mc_config(cores: usize) -> SystemConfig {
        SystemConfig { cores, ..SystemConfig::table2_overlay() }
    }

    fn stream(seed: u64, n: usize, pages: u64) -> Vec<TraceOp> {
        (0..n)
            .map(|i| {
                let va = VirtAddr::new(
                    (0x100 + (seed + i as u64) % pages) * PAGE_SIZE as u64
                        + ((seed * 7 + i as u64 * 3) % 64) * LINE_SIZE as u64,
                );
                match i % 3 {
                    0 => TraceOp::Load(va),
                    1 => TraceOp::Store(va),
                    _ => TraceOp::Compute(1 + (i as u32 % 5)),
                }
            })
            .collect()
    }

    #[test]
    fn interleaving_is_deterministic_and_covers_every_lane() {
        let run = || {
            let mut m = Machine::new(mc_config(4)).unwrap();
            let pid = m.spawn_process().unwrap();
            m.map_range(pid, Vpn::new(0x100), 8).unwrap();
            let streams: Vec<_> = (0..4).map(|c| stream(c, 120, 8)).collect();
            let sched = run_interleaved(&mut m, pid, &streams, 8).unwrap();
            (sched, m.save_snapshot())
        };
        let (a, snap_a) = run();
        let (b, snap_b) = run();
        assert_eq!(snap_a, snap_b, "same streams must produce identical snapshots");
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.quanta, b.quanta);
        for (c, lane) in a.per_core.iter().enumerate() {
            assert_eq!(lane.ops_applied, 120, "core {c} must drain its stream");
            assert!(lane.cycles > 0, "core {c} must make progress");
        }
    }

    #[test]
    fn scheduler_runs_the_laggard_first() {
        // One heavy stream and one light one: the light core finishes
        // its simulated work early and the heavy core gets every
        // remaining quantum, so both frontiers advance — neither lane
        // is starved and total cycles is the max, not the sum.
        let mut m = Machine::new(mc_config(2)).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(0x100), 8).unwrap();
        let heavy = stream(0, 300, 8);
        let light = stream(1, 30, 8);
        let sched = run_interleaved(&mut m, pid, &[heavy, light], 4).unwrap();
        assert_eq!(sched.per_core[0].ops_applied, 300);
        assert_eq!(sched.per_core[1].ops_applied, 30);
        assert_eq!(
            sched.stats.cycles,
            sched.per_core.iter().map(|l| l.cycles).max().unwrap(),
            "elapsed time is the slowest core's frontier"
        );
    }

    #[test]
    fn harness_scheduler_holds_refinement_on_multicore_fuzz_streams() {
        let mut h = SimHarness::new(mc_config(2)).unwrap();
        let streams = vec![generate_ops(5, 120), generate_ops(6, 120)];
        let quanta = run_interleaved_harness(&mut h, &streams, 6).unwrap();
        assert!(quanta >= (240 / 6) as u64);
        h.check_all().unwrap();
    }

    #[test]
    fn more_streams_than_cores_is_rejected() {
        let mut h = SimHarness::new(mc_config(1)).unwrap();
        let streams = vec![vec![TraceOp::Compute(1)], vec![TraceOp::Compute(1)]];
        assert!(run_interleaved_harness(&mut h, &streams, 1).is_err());
    }
}
