//! The contended-fork workload: the §5.1 fork scenario driven by
//! several cores at once, built to make every multi-core mechanism
//! fire on purpose.
//!
//! Shape: a parent process maps and warms a page range, forks (every
//! page becomes CoW-shared — overlay-enabled in overlay mode), then
//! each core drives its own post-fork stream against the *same* pages:
//!
//! * every core first sweeps the range with loads, so every core's TLB
//!   holds a copy of every page's OBitVector;
//! * each core then stores to its own *slice of lines* within each
//!   page — overlaying writes whose §4.3.3 OBitVector-update messages
//!   land on the other cores' live TLB copies (`coherence_obit_msgs`),
//!   with loads of the other cores' slices mixed in to keep the copies
//!   hot;
//! * the slices jointly cover whole pages, so the core that writes the
//!   last line triggers a promotion (§4.3.4) whose shootdown
//!   invalidates every other core's entry (`coherence_invalidations`);
//! * concurrent misses from cores whose frontiers the scheduler keeps
//!   aligned pile onto the shared L3 banks and the DRAM-bandwidth
//!   bucket (`contention_stall_cycles`, `Layer::Contention`).

use crate::sched::{run_interleaved, McSchedule};
use po_sim::{Machine, SystemConfig, TraceOp};
use po_telemetry::TelemetrySink;
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::{fingerprint64_bytes, PoResult, VirtAddr, Vpn};

/// SplitMix64 — the same self-contained generator the sim harness
/// uses, so streams never depend on ambient entropy.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Parameters of one contended-fork run.
#[derive(Clone, Debug)]
pub struct ContendedForkSpec {
    /// Cores driving the post-fork phase (the machine is built with
    /// this many; clamped to at least 1).
    pub cores: usize,
    /// First shared page.
    pub base_vpn: u64,
    /// Shared pages (all cores hammer the same range).
    pub pages: u64,
    /// Timed ops per core in the post-fork phase.
    pub ops_per_core: usize,
    /// Scheduling quantum, in ops.
    pub quantum_ops: usize,
    /// Stream-generation seed.
    pub seed: u64,
}

impl ContendedForkSpec {
    /// A spec sized for the `fig_multicore` bench: 16 shared pages,
    /// enough stores per core that the per-core line slices jointly
    /// promote pages.
    pub fn standard(cores: usize, seed: u64) -> Self {
        Self {
            cores: cores.max(1),
            base_vpn: 0x400,
            pages: 16,
            ops_per_core: 3000,
            quantum_ops: 16,
            seed,
        }
    }
}

/// Builds the per-core post-fork streams described in the module docs.
/// `streams[c]` is core `c`'s stream; with one core the single stream
/// is the whole workload (the uncontended baseline).
pub fn build_core_streams(spec: &ContendedForkSpec) -> Vec<Vec<TraceOp>> {
    let cores = spec.cores.max(1);
    let lines_per_core = (LINES_PER_PAGE / cores).max(1);
    let addr = |page: u64, line: usize| {
        VirtAddr::new((spec.base_vpn + page) * PAGE_SIZE as u64 + (line * LINE_SIZE) as u64)
    };
    (0..cores)
        .map(|c| {
            let mut rng =
                SplitMix64::new(spec.seed ^ (c as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let mut ops = Vec::with_capacity(spec.ops_per_core);
            // Sweep: one load per page fills this core's TLB with the
            // shared entries the other cores' writes will update.
            for page in 0..spec.pages {
                ops.push(TraceOp::Load(addr(page, (c * lines_per_core) % LINES_PER_PAGE)));
            }
            // This core's line slice, walked in page-major order so
            // writes from different cores to the same page interleave
            // in simulated time.
            let first_line = c * lines_per_core;
            let last_line =
                if c == cores - 1 { LINES_PER_PAGE } else { first_line + lines_per_core };
            let mut page = 0u64;
            let mut line = first_line;
            while ops.len() < spec.ops_per_core {
                let r = rng.next_u64();
                match r % 8 {
                    // Stores dominate: each advances this core's slice.
                    0..=3 => {
                        ops.push(TraceOp::Store(addr(page, line)));
                        line += 1;
                        if line >= last_line {
                            line = first_line;
                            page = (page + 1) % spec.pages;
                        }
                    }
                    // Loads of a *different* core's slice keep remote
                    // lines (and this core's TLB copies) hot.
                    4..=5 => {
                        let other = ((r >> 8) as usize) % LINES_PER_PAGE;
                        ops.push(TraceOp::Load(addr((r >> 16) % spec.pages, other)));
                    }
                    _ => ops.push(TraceOp::Compute(1 + ((r >> 24) % 8) as u32)),
                }
            }
            ops
        })
        .collect()
}

/// What one contended-fork run reports.
#[derive(Clone, Debug)]
pub struct ContendedForkOutcome {
    /// Cores the machine ran with.
    pub cores: usize,
    /// The scheduled run: stats delta, per-core lanes, quanta.
    pub sched: McSchedule,
    /// CPI of the post-fork phase.
    pub cpi: f64,
    /// Extra memory since the post-fork epoch, bytes.
    pub extra_memory_bytes: u64,
    /// FNV-1a fingerprint of the machine's final byte-stable snapshot —
    /// identical across host thread counts by construction.
    pub snapshot_fingerprint: u64,
}

impl ContendedForkOutcome {
    /// Cycles timed accesses stalled on shared-resource contention.
    pub fn contention_stall_cycles(&self) -> u64 {
        self.sched.stats.contention_stall_cycles.get()
    }

    /// §4.3.3 single-line OBitVector updates delivered to remote cores.
    pub fn coherence_obit_msgs(&self) -> u64 {
        self.sched.stats.coherence_obit_msgs.get()
    }

    /// Remote TLB entries invalidated by cross-core promotions/commits.
    pub fn coherence_invalidations(&self) -> u64 {
        self.sched.stats.coherence_invalidations.get()
    }

    /// Cycles stalled on coherence delivery to remote cores.
    pub fn coherence_stall_cycles(&self) -> u64 {
        self.sched.stats.coherence_stall_cycles.get()
    }
}

/// Runs the contended-fork workload: warmup on core 0, fork, epoch
/// mark, then the per-core streams interleaved by simulated time.
/// `config.cores` is overridden by the spec.
///
/// # Errors
///
/// Propagates machine faults.
pub fn run_contended_fork(
    config: SystemConfig,
    spec: &ContendedForkSpec,
    sink: TelemetrySink,
) -> PoResult<ContendedForkOutcome> {
    let cores = spec.cores.max(1);
    let config = SystemConfig { cores, ..config };
    let mut machine = Machine::new(config)?;
    machine.install_telemetry(sink);
    let parent = machine.spawn_process()?;
    machine.map_range(parent, Vpn::new(spec.base_vpn), spec.pages)?;

    // Warmup (core 0): touch every line so the fork shares real data.
    for page in 0..spec.pages {
        for line in 0..LINES_PER_PAGE {
            let va = VirtAddr::new(
                (spec.base_vpn + page) * PAGE_SIZE as u64 + (line * LINE_SIZE) as u64,
            );
            machine.execute_at_core(0, parent, &TraceOp::Store(va))?;
        }
    }
    let _checkpoint = machine.fork(parent)?;
    machine.mark_memory_epoch();

    let streams = build_core_streams(spec);
    let sched = run_interleaved(&mut machine, parent, &streams, spec.quantum_ops)?;
    machine.flush_overlays()?;
    let cpi = sched.stats.cpi();
    Ok(ContendedForkOutcome {
        cores,
        cpi,
        extra_memory_bytes: machine.extra_memory_bytes(),
        snapshot_fingerprint: fingerprint64_bytes(&machine.save_snapshot()),
        sched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_telemetry::Layer;

    fn spec(cores: usize) -> ContendedForkSpec {
        ContendedForkSpec { ops_per_core: 1200, ..ContendedForkSpec::standard(cores, 0xF0_4C) }
    }

    #[test]
    fn four_core_run_shows_contention_and_coherence_traffic() {
        let sink = TelemetrySink::with_capacity(64, 64);
        let out =
            run_contended_fork(SystemConfig::table2_overlay(), &spec(4), sink.clone()).unwrap();
        assert!(out.contention_stall_cycles() > 0, "shared L3/DRAM must queue: {out:?}");
        assert!(out.coherence_obit_msgs() > 0, "remote OBitVector copies must be updated");
        assert!(out.coherence_invalidations() > 0, "cross-core promotions must shoot down");
        let stack = sink.cpi_stack().expect("sink is active");
        assert!(
            stack.layer_cycles(Layer::Contention) > 0,
            "contention stalls must surface as the Contention CPI slice"
        );
    }

    #[test]
    fn single_core_run_has_no_contention_or_coherence_traffic() {
        let out =
            run_contended_fork(SystemConfig::table2_overlay(), &spec(1), TelemetrySink::noop())
                .unwrap();
        assert_eq!(out.contention_stall_cycles(), 0);
        assert_eq!(out.coherence_obit_msgs(), 0);
        assert_eq!(out.coherence_invalidations(), 0);
        assert_eq!(out.coherence_stall_cycles(), 0);
    }

    #[test]
    fn contended_fork_is_deterministic() {
        let a = run_contended_fork(SystemConfig::table2_overlay(), &spec(4), TelemetrySink::noop())
            .unwrap();
        let b = run_contended_fork(SystemConfig::table2_overlay(), &spec(4), TelemetrySink::noop())
            .unwrap();
        assert_eq!(a.snapshot_fingerprint, b.snapshot_fingerprint);
        assert_eq!(a.sched.stats.cycles, b.sched.stats.cycles);
        assert_eq!(a.coherence_obit_msgs(), b.coherence_obit_msgs());
    }

    #[test]
    fn contention_slows_the_contended_run_down() {
        // Same total work, 4 cores vs 1: the multi-core run finishes in
        // fewer elapsed cycles (parallelism) but pays nonzero stall
        // cycles the serial run never sees.
        let four =
            run_contended_fork(SystemConfig::table2_overlay(), &spec(4), TelemetrySink::noop())
                .unwrap();
        let one =
            run_contended_fork(SystemConfig::table2_overlay(), &spec(1), TelemetrySink::noop())
                .unwrap();
        assert!(four.sched.stats.cycles < one.sched.stats.cycles * 4);
        assert!(four.contention_stall_cycles() > one.contention_stall_cycles());
    }
}
