//! # po-analyze — static analysis for the page-overlays repo
//!
//! Two independent fronts, one finding model, one CI gate:
//!
//! * [`verifier`] — an abstract interpreter over deterministic-simulation
//!   `.trace` files. It symbolically executes the overlay state machine
//!   (per-page must/may OBitVectors, three-valued PTE flags, OMS demand
//!   accounting, TLB-staleness tracking) and proves properties no
//!   concrete replay can: ops that must fail, crash points that can
//!   never fire, overlay allocation that can exceed an OMS budget,
//!   traces that end with resident-but-unbacked overlay lines.
//! * [`lints`] — project-specific source lints built on a
//!   self-contained tokenizer (no compiler or registry dependencies):
//!   snapshot encode/decode field-pairing symmetry, telemetry
//!   counter-name parity, fault-site threading coverage, telemetry-sink
//!   threading completeness.
//!
//! Both fronts emit [`findings::Report`]s with deterministic JSON and
//! human renderings; the `po_analyze` binary drives them and CI runs it
//! with findings-as-errors outside the seeded true-positive fixtures.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod findings;
pub mod lints;
pub mod verifier;

pub use findings::{Finding, Report, Severity};
pub use verifier::{verify_ops, verify_trace_text, Analysis, Verdict, VerifierOptions};
