//! `po_analyze` — the static-analysis driver.
//!
//! ```text
//! po_analyze lint   [--root DIR] [--json]
//! po_analyze trace  [--cow] [--cores N] [--oms-limit BYTES] [--frag-slack F]
//!                   [--crash-at N]... [--assume-faults] [--json] FILE...
//! po_analyze events [--json] FILE...
//! po_analyze all    [--root DIR] [--json]
//! ```
//!
//! * `lint` — run the source lints (PA-L001..L006) over the tree.
//! * `trace` — abstractly interpret `.trace` files (PA-V000..V007).
//!   `--cow` verifies under the copy-on-write baseline config instead
//!   of the overlay config; `--oms-limit` arms the OMS-budget rule and
//!   `--frag-slack F` pads its peak-demand check by a fragmentation
//!   headroom fraction (e.g. `0.5` demands the budget cover 1.5× the
//!   peak — the §4.4.3 allocator strands freed bytes under churn);
//!   each `--crash-at N` arms the crash-point reachability rule for
//!   query index N; `--assume-faults` verifies as if a fault plan may
//!   be active (only fault-independent findings survive); `--cores N`
//!   verifies against an N-core machine (arms the PA-V007 core-range
//!   rule and per-core TLB views).
//! * `events` — replay exported telemetry journals (`.jsonl`) through
//!   the happens-before concurrency verifier (PA-C000..PA-C006).
//! * `all` — `lint` plus `trace` over every `.trace` file under the
//!   root (fixtures excluded).
//!
//! Exit status: 0 when no finding reaches warn severity, 1 when one
//! does, 2 on usage or I/O errors.

use po_analyze::lints;
use po_analyze::verifier::{analyze_jsonl, verify_trace_text, VerifierOptions};
use po_analyze::{Report, Severity};
use po_sim::SystemConfig;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cli {
    command: String,
    root: PathBuf,
    json: bool,
    cow: bool,
    oms_limit: Option<u64>,
    frag_slack: f64,
    crash_at: Vec<u64>,
    assume_faults: bool,
    cores: Option<usize>,
    files: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: po_analyze lint   [--root DIR] [--json]\n\
         \x20      po_analyze trace  [--cow] [--cores N] [--oms-limit BYTES] [--frag-slack F] \
         [--crash-at N]... [--assume-faults] [--json] FILE...\n\
         \x20      po_analyze events [--json] FILE...\n\
         \x20      po_analyze all    [--root DIR] [--json]"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: args.first().cloned().ok_or("missing command")?,
        root: PathBuf::from("."),
        json: false,
        cow: false,
        oms_limit: None,
        frag_slack: 0.0,
        crash_at: Vec::new(),
        assume_faults: false,
        cores: None,
        files: Vec::new(),
    };
    if !matches!(cli.command.as_str(), "lint" | "trace" | "events" | "all") {
        return Err(format!("unknown command {}", cli.command));
    }
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => cli.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--json" => cli.json = true,
            "--cow" => cli.cow = true,
            "--assume-faults" => cli.assume_faults = true,
            "--oms-limit" => {
                let v = it.next().ok_or("--oms-limit needs a value")?;
                cli.oms_limit = Some(v.parse().map_err(|_| format!("bad --oms-limit {v}"))?);
            }
            "--frag-slack" => {
                let v = it.next().ok_or("--frag-slack needs a value")?;
                cli.frag_slack = v.parse().map_err(|_| format!("bad --frag-slack {v}"))?;
                if !cli.frag_slack.is_finite() || cli.frag_slack < 0.0 {
                    return Err(format!("--frag-slack must be a finite fraction ≥ 0, got {v}"));
                }
            }
            "--crash-at" => {
                let v = it.next().ok_or("--crash-at needs a value")?;
                cli.crash_at.push(v.parse().map_err(|_| format!("bad --crash-at {v}"))?);
            }
            "--cores" => {
                let v = it.next().ok_or("--cores needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --cores {v}"))?;
                if n == 0 {
                    return Err("--cores must be at least 1".to_string());
                }
                cli.cores = Some(n);
            }
            f if !f.starts_with('-') => cli.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if matches!(cli.command.as_str(), "trace" | "events") && cli.files.is_empty() {
        return Err(format!("{} needs at least one FILE", cli.command));
    }
    Ok(cli)
}

fn verify_file(cli: &Cli, path: &Path, report: &mut Report) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut config = if cli.cow { SystemConfig::table2() } else { SystemConfig::table2_overlay() };
    if let Some(n) = cli.cores {
        config.cores = n;
    }
    let opts = VerifierOptions {
        oms_limit: cli.oms_limit,
        frag_slack: cli.frag_slack,
        crash_queries: cli.crash_at.clone(),
        assume_faults: cli.assume_faults,
    };
    let analysis = verify_trace_text(&config, &text, &opts, &path.display().to_string());
    report.extend(analysis.report);
    Ok(())
}

/// `.trace` files under `root`, skipping fixture directories.
fn collect_traces(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(name.as_ref(), "target" | ".git" | "fixtures" | "related") {
                    stack.push(path);
                }
            } else if name.ends_with(".trace") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn run(cli: &Cli) -> Result<Report, String> {
    let mut report = Report::new();
    if matches!(cli.command.as_str(), "lint" | "all") {
        report.extend(lints::run_lints(&cli.root).map_err(|e| format!("lint walk failed: {e}"))?);
    }
    if cli.command == "trace" {
        for f in &cli.files {
            verify_file(cli, f, &mut report)?;
        }
    }
    if cli.command == "events" {
        for f in &cli.files {
            let text = std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read {}: {e}", f.display()))?;
            report.extend(analyze_jsonl(&text, &f.display().to_string()));
        }
    }
    if cli.command == "all" {
        let traces = collect_traces(&cli.root).map_err(|e| format!("trace walk failed: {e}"))?;
        for f in &traces {
            verify_file(cli, f, &mut report)?;
        }
    }
    report.sort();
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("po_analyze: {e}");
            return usage();
        }
    };
    match run(&cli) {
        Ok(report) => {
            if cli.json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_human());
            }
            if report.clean_at(Severity::Warn) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("po_analyze: {e}");
            ExitCode::from(2)
        }
    }
}
