//! The finding model shared by both analysis fronts: a flat, sortable
//! list of diagnostics with deterministic JSON and human renderings.
//!
//! Findings carry a stable rule identifier (`PA-Vxxx` for the trace
//! verifier, `PA-Lxxx` for the source lints) so CI can gate on them and
//! fixtures can assert that a specific rule fired.

use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: surfaced in reports, never gates.
    Info,
    /// Suspicious but replayable/compilable; gates in CI (`-D` mode).
    Warn,
    /// The artifact is unusable (e.g. a trace the parser rejects).
    Error,
}

impl Severity {
    /// Lowercase label used in both renderings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic from either front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`PA-V003`, `PA-L001`, ...).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Subject file: a source path for lints, the trace path (or
    /// `<trace>`) for the verifier.
    pub file: String,
    /// 1-based line: source line for lints, op ordinal for the verifier
    /// (0 = whole-artifact finding).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    #[must_use]
    pub fn new(
        rule: &'static str,
        severity: Severity,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self { rule, severity, file: file.into(), line, message: message.into() }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] {}:{}: {}",
            self.severity.label(),
            self.rule,
            self.severity.label(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// An ordered collection of findings with the two renderings.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The findings, in the order the rules emitted them.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// Sorts by (file, line, rule) for deterministic output regardless
    /// of rule execution order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
    }

    /// True when no finding reaches `min` severity.
    #[must_use]
    pub fn clean_at(&self, min: Severity) -> bool {
        self.findings.iter().all(|f| f.severity < min)
    }

    /// Highest severity present, if any finding exists.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Deterministic machine-readable rendering (one JSON document).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"tool\":\"po-analyze\",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(f.severity.label()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Human rendering: one line per finding plus a summary line.
    #[must_use]
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} {} {}:{}: {}\n",
                f.severity.label(),
                f.rule,
                f.file,
                f.line,
                f.message
            ));
        }
        let errors = self.findings.iter().filter(|f| f.severity == Severity::Error).count();
        let warns = self.findings.iter().filter(|f| f.severity == Severity::Warn).count();
        let infos = self.findings.iter().filter(|f| f.severity == Severity::Info).count();
        out.push_str(&format!(
            "{} finding(s): {errors} error(s), {warns} warning(s), {infos} info\n",
            self.findings.len()
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_deterministic() {
        let mut r = Report::new();
        r.push(Finding::new("PA-L001", Severity::Warn, "a\"b.rs", 3, "odd \\ path\n"));
        let j = r.to_json();
        assert!(j.contains("\\\"b.rs"), "{j}");
        assert!(j.contains("odd \\\\ path\\n"), "{j}");
        assert_eq!(j, r.to_json());
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let mut r = Report::new();
        r.push(Finding::new("PA-L002", Severity::Warn, "b.rs", 1, "x"));
        r.push(Finding::new("PA-L001", Severity::Warn, "a.rs", 9, "y"));
        r.push(Finding::new("PA-L001", Severity::Warn, "a.rs", 2, "z"));
        r.sort();
        let order: Vec<_> = r.findings.iter().map(|f| (f.file.as_str(), f.line)).collect();
        assert_eq!(order, vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]);
    }

    #[test]
    fn severity_gating() {
        let mut r = Report::new();
        assert!(r.clean_at(Severity::Info));
        r.push(Finding::new("PA-V006", Severity::Info, "t", 0, "m"));
        assert!(r.clean_at(Severity::Warn));
        r.push(Finding::new("PA-V001", Severity::Warn, "t", 1, "m"));
        assert!(!r.clean_at(Severity::Warn));
        assert!(r.clean_at(Severity::Error));
        assert_eq!(r.max_severity(), Some(Severity::Warn));
    }
}
