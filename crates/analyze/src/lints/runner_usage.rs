//! PA-L005 — bench binaries drive machines through the shared runner.
//!
//! Every figure/ablation binary used to carry its own machine-drive
//! loop; those loops drifted (different warmup derivation, missing
//! fingerprints, no telemetry) and none of them could be sharded. The
//! execution core now lives in `po_sim::runner`, and binaries submit
//! [`WorkloadJob`](po_sim::runner::WorkloadJob)s to a
//! `po_bench::ShardPool`. A binary (`src/bin/*.rs` anywhere in the
//! workspace) that constructs a `Machine` or `SimHarness` — or calls a
//! scenario entry point directly — has re-grown a private drive loop:
//! its numbers silently fall out of the shard-determinism guarantee and
//! the merged telemetry exports.
//!
//! Deliberate exceptions (e.g. a tool that must single-step a machine)
//! carry `// po-analyze: allow(PA-L005)` on or above the line.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L005";

/// Source patterns that mean "this file drives a machine itself".
/// `run_fork_experiment` also catches the `_on`/`_instrumented`
/// variants, and `run_periodic_checkpoint_experiment` its `_on` twin.
const MARKERS: [&str; 5] = [
    "Machine::new(",
    "SimHarness::",
    "run_trace(",
    "run_fork_experiment",
    "run_periodic_checkpoint_experiment",
];

/// Whether `path` (repo-relative, `/`-separated) is a binary target.
fn is_bin_target(path: &str) -> bool {
    path.starts_with("bin/") || path.contains("/bin/")
}

/// Runs the rule over one scanned file.
pub fn check(path: &str, file: &ScannedFile, report: &mut Report) {
    if !is_bin_target(path) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.allowed(i, RULE) {
            continue;
        }
        let Some(marker) = MARKERS.iter().find(|m| line.contains(*m)) else {
            continue;
        };
        report.push(Finding::new(
            RULE,
            Severity::Warn,
            path,
            i + 1,
            format!(
                "binary drives a machine privately (`{marker}`) instead of submitting \
                 WorkloadJobs to the shared runner (po_sim::runner via po_bench::ShardPool): \
                 private drive loops fall outside the shard-determinism guarantee and the \
                 merged telemetry exports"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Report {
        let file = ScannedFile::scan(src);
        let mut r = Report::new();
        check(path, &file, &mut r);
        r
    }

    #[test]
    fn private_loop_in_a_bin_fires() {
        let src = "\
fn main() {
    let mut machine = Machine::new(SystemConfig::table2_overlay());
    run_trace(&mut machine, Asid::new(1), &ops).expect(\"run\");
}
";
        let rep = run("crates/bench/src/bin/fig99.rs", src);
        assert_eq!(rep.findings.len(), 2, "{}", rep.to_human());
        assert!(rep.findings.iter().all(|f| f.rule == RULE));
    }

    #[test]
    fn the_same_source_outside_bin_is_ignored() {
        let src = "fn f() { let m = Machine::new(cfg); }\n";
        assert!(run("crates/sim/src/runner.rs", src).findings.is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "\
fn main() {
    // po-analyze: allow(PA-L005)
    let mut machine = Machine::new(cfg);
}
";
        assert!(run("src/bin/tool.rs", src).findings.is_empty());
    }

    #[test]
    fn runner_submission_is_clean() {
        let src = "\
fn main() {
    let pool = ShardPool::from_args(&args);
    let results = run_jobs(&pool, jobs).expect(\"runs\");
}
";
        assert!(run("crates/bench/src/bin/fig8.rs", src).findings.is_empty());
    }

    #[test]
    fn scenario_calls_and_harness_count_as_private_loops() {
        for marker in [
            "run_fork_experiment(cfg, v, 1, &w, &p)",
            "SimHarness::new(cfg)",
            "run_periodic_checkpoint_experiment_on(m, v, 1, &w, &i, 8)",
        ] {
            let src = format!("fn main() {{ let r = {marker}; }}\n");
            let rep = run("src/bin/x.rs", &src);
            assert_eq!(rep.findings.len(), 1, "marker {marker}: {}", rep.to_human());
        }
    }
}
