//! PA-L003 — fault-site variant threading coverage.
//!
//! The fault-injection harness only exercises what the components
//! actually query: a [`FaultSite`](po_types::FaultSite) variant that no
//! layer ever passes to `fire()` is dead configuration — plans naming
//! it silently do nothing, and the robustness suite reports vacuous
//! coverage. Two checks over the whole source set:
//!
//! 1. every `FaultSite` enum variant appears in the `FaultSite::ALL`
//!    table (the injector sizes its per-site state from `ALL`);
//! 2. every variant is referenced (`FaultSite::<Variant>`) in at least
//!    one file other than the defining one — i.e. some component
//!    threads it.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L003";

/// Extracts `(variant, 0-based line)` pairs from the `FaultSite` enum
/// body in the defining file.
fn enum_variants(file: &ScannedFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for block in file.blocks("enum") {
        if block.name != "FaultSite" {
            continue;
        }
        for (i, line) in file.lines[block.start..=block.end].iter().enumerate() {
            let t = line.trim().trim_end_matches(',');
            if !t.is_empty()
                && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && t.chars().all(|c| c.is_alphanumeric())
            {
                out.push((t.to_string(), block.start + i));
            }
        }
    }
    out
}

/// All `FaultSite::<Variant>` references in a file.
fn site_refs(file: &ScannedFile) -> Vec<String> {
    file.lines.iter().flat_map(|l| site_refs_line(l)).collect()
}

/// Runs the rule over the whole scanned source set. `files` pairs a
/// repo-relative path with its scan; the defining file is the one
/// containing the `FaultSite` enum.
pub fn check(files: &[(String, ScannedFile)], report: &mut Report) {
    let Some((def_path, def_file)) =
        files.iter().find(|(_, f)| f.lines.iter().any(|l| l.contains("enum FaultSite")))
    else {
        return; // nothing to check in this source set
    };
    let variants = enum_variants(def_file);
    if variants.is_empty() {
        return;
    }

    // Check 1: membership in the ALL table (within the defining file).
    let all_table: Vec<String> = {
        let mut in_table = false;
        let mut sites = Vec::new();
        for line in &def_file.lines {
            if line.contains("const ALL") {
                in_table = true;
            }
            if in_table {
                for s in site_refs_line(line) {
                    sites.push(s);
                }
                // The type annotation `[FaultSite; N]` also contains a
                // bracket — only `];` ends the initializer list.
                if line.contains("];") {
                    break;
                }
            }
        }
        sites
    };
    for (v, line) in &variants {
        if !all_table.iter().any(|s| s == v) && !def_file.allowed(*line, RULE) {
            report.push(Finding::new(
                RULE,
                Severity::Warn,
                def_path.as_str(),
                line + 1,
                format!(
                    "fault site {v} is missing from FaultSite::ALL: the injector never \
                     allocates state for it and plans naming it are dead"
                ),
            ));
        }
    }

    // Check 2: at least one reference outside the defining file.
    for (v, line) in &variants {
        let threaded = files
            .iter()
            .filter(|(p, _)| p != def_path)
            .any(|(_, f)| site_refs(f).iter().any(|s| s == v));
        if !threaded && !def_file.allowed(*line, RULE) {
            report.push(Finding::new(
                RULE,
                Severity::Warn,
                def_path.as_str(),
                line + 1,
                format!(
                    "fault site {v} is never threaded through any component: no file outside \
                     the definition references FaultSite::{v}, so injecting it does nothing"
                ),
            ));
        }
    }
}

/// `FaultSite::X` references on a single line.
fn site_refs_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find("FaultSite::") {
        let tail = &rest[at + "FaultSite::".len()..];
        let name: String = tail.chars().take_while(|c| c.is_alphanumeric()).collect();
        if !name.is_empty() {
            out.push(name.clone());
        }
        rest = &tail[name.len()..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(def: &str, user: &str) -> Vec<(String, ScannedFile)> {
        vec![
            ("types/fault.rs".to_string(), ScannedFile::scan(def)),
            ("vm/os.rs".to_string(), ScannedFile::scan(user)),
        ]
    }

    const DEF: &str = "\
pub enum FaultSite {
    AlphaFault,
    BetaFault,
}
impl FaultSite {
    pub const ALL: [FaultSite; 2] = [
        FaultSite::AlphaFault,
        FaultSite::BetaFault,
    ];
}
";

    #[test]
    fn fully_threaded_is_clean() {
        let user = "fn f(i: &FaultInjector) {
    i.fire(FaultSite::AlphaFault);
    i.fire(FaultSite::BetaFault);
}
";
        let mut r = Report::new();
        check(&corpus(DEF, user), &mut r);
        assert!(r.findings.is_empty(), "{}", r.to_human());
    }

    #[test]
    fn unthreaded_variant_fires() {
        let user = "fn f(i: &FaultInjector) { i.fire(FaultSite::AlphaFault); }\n";
        let mut r = Report::new();
        check(&corpus(DEF, user), &mut r);
        assert_eq!(r.findings.len(), 1, "{}", r.to_human());
        assert!(r.findings[0].message.contains("BetaFault"));
        assert!(r.findings[0].message.contains("never threaded"));
    }

    #[test]
    fn variant_missing_from_all_fires() {
        let def = "\
pub enum FaultSite {
    AlphaFault,
    BetaFault,
}
impl FaultSite {
    pub const ALL: [FaultSite; 1] = [
        FaultSite::AlphaFault,
    ];
}
";
        let user = "fn f(i: &FaultInjector) {
    i.fire(FaultSite::AlphaFault);
    i.fire(FaultSite::BetaFault);
}
";
        let mut r = Report::new();
        check(&corpus(def, user), &mut r);
        assert_eq!(r.findings.len(), 1, "{}", r.to_human());
        assert!(r.findings[0].message.contains("missing from FaultSite::ALL"));
    }
}
