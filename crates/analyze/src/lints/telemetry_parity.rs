//! PA-L002 — telemetry counter-name ↔ component-stat parity.
//!
//! Every layer that emits a named telemetry counter
//! (`self.sink.count("<component>.<stat>", n)`) also keeps a local
//! always-on stats struct with a [`Counter`](po_types::Counter) field
//! per statistic — telemetry is an optional *view*, never the only
//! record. The checkable convention: the `<stat>` suffix of every
//! emitted counter name must match a `<stat>: Counter` field declared
//! in the same file. An emission without a backing field is a
//! statistic that silently vanishes whenever telemetry is off.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L002";

/// Counter field names declared in the file (outside test mods).
fn counter_fields(file: &ScannedFile) -> Vec<String> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] {
            continue;
        }
        let t = line.trim();
        let Some(colon) = t.find(':') else { continue };
        let ty = t[colon + 1..].trim().trim_end_matches(',');
        if ty != "Counter" {
            continue;
        }
        let name = t[..colon].trim().trim_start_matches("pub ").trim();
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
            out.push(name.to_string());
        }
    }
    out
}

/// Runs the rule over one scanned file.
pub fn check(path: &str, file: &ScannedFile, report: &mut Report) {
    let fields = counter_fields(file);
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || !line.contains(".count(") {
            continue;
        }
        // The cleaned line has the literal blanked; the original text
        // lives in the per-line string table.
        let Some(name) = file.strings[i].first() else { continue };
        let Some((component, stat)) = name.split_once('.') else { continue };
        if component.is_empty()
            || stat.is_empty()
            || !stat.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            continue;
        }
        if !fields.iter().any(|f| f == stat) && !file.allowed(i, RULE) {
            report.push(Finding::new(
                RULE,
                Severity::Warn,
                path,
                i + 1,
                format!(
                    "telemetry counter \"{name}\" has no matching `{stat}: Counter` stat field \
                     in this file: the statistic vanishes when telemetry is off"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Report {
        let file = ScannedFile::scan(src);
        let mut r = Report::new();
        check("t.rs", &file, &mut r);
        r
    }

    #[test]
    fn paired_counter_is_clean() {
        let src = "\
pub struct Stats {
    pub widgets: Counter,
}
impl M {
    fn tick(&mut self) {
        self.stats.widgets.inc();
        self.sink.count(\"m.widgets\", 1);
    }
}
";
        assert!(run(src).findings.is_empty(), "{}", run(src).to_human());
    }

    #[test]
    fn unbacked_counter_fires() {
        let src = "\
pub struct Stats {
    pub widgets: Counter,
}
fn tick(sink: &TelemetrySink) {
    sink.count(\"m.gadgets\", 1);
}
";
        let rep = run(src);
        assert_eq!(rep.findings.len(), 1, "{}", rep.to_human());
        assert!(rep.findings[0].message.contains("m.gadgets"));
    }

    #[test]
    fn test_mod_emissions_ignored() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(sink: &TelemetrySink) {
        sink.count(\"x.y\", 1);
    }
}
";
        assert!(run(src).findings.is_empty());
    }

    #[test]
    fn allow_escape_hatch() {
        let src = "\
fn tick(sink: &TelemetrySink) {
    // po-analyze: allow(PA-L002)
    sink.count(\"m.transient\", 1);
}
";
        assert!(run(src).findings.is_empty());
    }
}
