//! A self-contained Rust source scanner — no compiler, no registry
//! dependencies — sufficient for the project lints.
//!
//! It is *not* a parser: it cleans a source file (comments removed,
//! string and char literals neutralized so braces inside them cannot
//! confuse anything) while remembering the original string literals per
//! line, tracks `#[cfg(test)] mod` regions, extracts brace-balanced
//! `fn` and `struct` bodies, and records `// po-analyze: allow(RULE)`
//! escape hatches.

/// One scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Cleaned lines: comments stripped, string/char literal contents
    /// replaced by spaces (the quotes remain as `"​"` markers).
    pub lines: Vec<String>,
    /// String literals per 0-based line index, in order of appearance.
    pub strings: Vec<Vec<String>>,
    /// 0-based line indices lying inside a `#[cfg(test)] mod` block.
    pub test_lines: Vec<bool>,
    /// `(0-based line, rule)` pairs from `po-analyze: allow(...)`
    /// comments; each suppresses the rule on that line and the next.
    pub allows: Vec<(usize, String)>,
}

/// A brace-balanced item body (a `fn` or a `struct`).
#[derive(Debug)]
pub struct Block {
    /// Item name (`fn` or `struct` identifier).
    pub name: String,
    /// 0-based line of the item header.
    pub start: usize,
    /// 0-based line of the closing brace (inclusive).
    pub end: usize,
}

impl ScannedFile {
    /// Scans `text`.
    #[must_use]
    pub fn scan(text: &str) -> Self {
        let mut lines = Vec::new();
        let mut strings = Vec::new();
        let mut allows = Vec::new();
        let mut in_block_comment = false;
        let mut in_string = false;
        for (lineno, raw) in text.lines().enumerate() {
            let (clean, strs, comment) = clean_line(raw, &mut in_block_comment, &mut in_string);
            if let Some(c) = comment {
                for rule in parse_allows(&c) {
                    allows.push((lineno, rule));
                }
            }
            lines.push(clean);
            strings.push(strs);
        }
        let test_lines = mark_test_mods(&lines);
        Self { lines, strings, test_lines, allows }
    }

    /// Whether `rule` is allowed (suppressed) at 0-based line `line`.
    #[must_use]
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.iter().any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }

    /// All brace-balanced bodies of items introduced by `keyword`
    /// (`"fn"` or `"struct"`), excluding `#[cfg(test)]` regions.
    #[must_use]
    pub fn blocks(&self, keyword: &str) -> Vec<Block> {
        let mut out = Vec::new();
        let pat = format!("{keyword} ");
        let mut i = 0;
        while i < self.lines.len() {
            if self.test_lines[i] {
                i += 1;
                continue;
            }
            let line = &self.lines[i];
            if let Some(name) = item_name(line, &pat) {
                // `struct Foo;` / `struct Foo(u8);` have no body to walk.
                if keyword == "struct" && terminated_without_body(line) {
                    i += 1;
                    continue;
                }
                if let Some(end) = self.balance_from(i) {
                    out.push(Block { name, start: i, end });
                    i = if keyword == "fn" { end + 1 } else { i + 1 };
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// Finds the 0-based line index on which the brace opened at or
    /// after line `start` closes. `None` if the file ends first.
    fn balance_from(&self, start: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut opened = false;
        for (i, line) in self.lines.iter().enumerate().skip(start) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // A `fn f();` trait-style signature has no body.
                    ';' if !opened => return None,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                return Some(i);
            }
        }
        None
    }
}

/// `struct Foo;` or `struct Foo(A, B);` — no brace-balanced body.
fn terminated_without_body(line: &str) -> bool {
    match (line.find('{'), line.find(';')) {
        (None, Some(_)) => true,
        (Some(b), Some(s)) => s < b,
        _ => false,
    }
}

/// Extracts the identifier following `pat` (e.g. `"fn "`) on `line`,
/// ignoring matches like `pub fn` prefixes handled by searching for the
/// pattern anywhere preceded by start/space.
fn item_name(line: &str, pat: &str) -> Option<String> {
    let at = line.find(pat)?;
    if at > 0 {
        let before = line.as_bytes()[at - 1];
        if !(before == b' ' || before == b'(') {
            return None;
        }
    }
    let rest = &line[at + pat.len()..];
    let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Cleans one line: returns (cleaned text, string literals found, the
/// comment text if the line carried one).
fn clean_line(
    raw: &str,
    in_block_comment: &mut bool,
    in_string: &mut bool,
) -> (String, Vec<String>, Option<String>) {
    let mut out = String::with_capacity(raw.len());
    let mut strs = Vec::new();
    let mut comment = None;
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    // A string literal left open on a previous line: its continuation
    // is literal content, never code.
    if *in_string {
        let mut lit = String::new();
        let mut closed = false;
        while i < chars.len() {
            match chars[i] {
                '\\' if i + 1 < chars.len() => {
                    lit.push(chars[i]);
                    lit.push(chars[i + 1]);
                    i += 2;
                }
                '"' => {
                    i += 1;
                    closed = true;
                    break;
                }
                ch => {
                    lit.push(ch);
                    i += 1;
                }
            }
        }
        strs.push(lit);
        *in_string = !closed;
    }
    while i < chars.len() {
        if *in_block_comment {
            if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                comment = Some(chars[i..].iter().collect());
                break;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                // String literal: capture contents, neutralize in the
                // cleaned line. If the line ends before the closing
                // quote, the literal continues on the next line.
                let mut lit = String::new();
                let mut closed = false;
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' if i + 1 < chars.len() => {
                            lit.push(chars[i]);
                            lit.push(chars[i + 1]);
                            i += 2;
                        }
                        '"' => {
                            closed = true;
                            break;
                        }
                        ch => {
                            lit.push(ch);
                            i += 1;
                        }
                    }
                }
                i += 1; // closing quote (or EOL on a continued literal)
                out.push('"');
                out.push('"');
                strs.push(lit);
                *in_string = !closed;
            }
            '\'' => {
                // Char literal vs lifetime. `'\n'`, `'x'` are literals;
                // `'a` (lifetime) is left alone.
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to the closing quote.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    out.push_str("' '");
                    i = j + 1;
                } else if chars.get(i + 2) == Some(&'\'') {
                    out.push_str("' '");
                    i += 3;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, strs, comment)
}

/// Extracts rules from `po-analyze: allow(RULE)` in a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("po-analyze: allow(") {
        let tail = &rest[at + "po-analyze: allow(".len()..];
        if let Some(close) = tail.find(')') {
            out.push(tail[..close].trim().to_string());
            rest = &tail[close..];
        } else {
            break;
        }
    }
    out
}

/// Marks lines inside `#[cfg(test)] mod ... { }` blocks.
fn mark_test_mods(lines: &[String]) -> Vec<bool> {
    let mut marked = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the mod opening within the next couple of lines.
            let mut j = i;
            let mut found = false;
            while j < lines.len() && j <= i + 3 {
                if lines[j].contains("mod ") {
                    found = true;
                    break;
                }
                j += 1;
            }
            if found {
                let mut depth = 0i64;
                let mut opened = false;
                while j < lines.len() {
                    for c in lines[j].chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    marked[j] = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_separated() {
        let src = "let x = \"a // not a comment\"; // real comment\n";
        let f = ScannedFile::scan(src);
        assert_eq!(f.strings[0], vec!["a // not a comment".to_string()]);
        assert!(!f.lines[0].contains("not a"), "{}", f.lines[0]);
        assert!(!f.lines[0].contains("real"), "{}", f.lines[0]);
    }

    #[test]
    fn char_literals_do_not_break_braces() {
        let src = "fn f() {\n    let c = '{';\n    let lt: &'static str = \"x\";\n}\nfn g() {}\n";
        let f = ScannedFile::scan(src);
        let fns = f.blocks("fn");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "f");
        assert_eq!(fns[0].end, 3);
        assert_eq!(fns[1].name, "g");
    }

    #[test]
    fn test_mods_are_excluded() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() {}\n}\n";
        let f = ScannedFile::scan(src);
        let fns = f.blocks("fn");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn unit_structs_have_no_body() {
        let src = "struct A;\nstruct B(u8);\nstruct C {\n    x: u8,\n}\n";
        let f = ScannedFile::scan(src);
        let structs = f.blocks("struct");
        assert_eq!(structs.len(), 1);
        assert_eq!(structs[0].name, "C");
    }

    #[test]
    fn allow_directives_suppress_current_and_next_line() {
        let src = "// po-analyze: allow(PA-L002)\nlet x = 1;\nlet y = 2;\n";
        let f = ScannedFile::scan(src);
        assert!(f.allowed(0, "PA-L002"));
        assert!(f.allowed(1, "PA-L002"));
        assert!(!f.allowed(2, "PA-L002"));
        assert!(!f.allowed(1, "PA-L001"));
    }
}
