//! PA-L001 — snapshot encode/decode field-pairing symmetry.
//!
//! The snapshot codec ([`po_types::snapshot`]) is byte-positional:
//! `decode_snapshot` must read exactly the fields `encode_snapshot`
//! wrote, in the same order and with the same widths, or every restore
//! silently shears. The project convention is that the two functions
//! are structurally parallel (same loops, same order), which makes the
//! property statically checkable: the source-order sequence of
//! `put_<ty>` call sites in an `encode_snapshot` body must equal the
//! sequence of `get_<ty>` call sites in the paired `decode_snapshot`
//! body (nested `encode_snapshot`/`decode_snapshot` calls pair with
//! each other).
//!
//! Loop iteration counts and branch-arm repetitions are dynamic, so
//! sequences are compared in canonical form: the order in which
//! distinct widths *first appear*. That catches swapped fields and
//! width mismatches statically; same-width omissions are left to the
//! dynamic roundtrip tests, which cover them exactly.
//!
//! Pairs are matched positionally within a file: the N-th
//! `encode_snapshot` pairs with the N-th `decode_snapshot`.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L001";

/// Token sequence of one codec body: `put_`/`get_` type suffixes plus
/// `nested` markers for recursive codec calls.
fn codec_tokens(file: &ScannedFile, start: usize, end: usize, kind: &str) -> Vec<String> {
    // `kind` is "encode" or "decode"; encode bodies call `put_<ty>` and
    // nested `encode_snapshot`, decode bodies `get_<ty>` and nested
    // `decode_snapshot`.
    let call = if kind == "encode" { "put_" } else { "get_" };
    let nested = format!("{kind}_snapshot(");
    let mut out = Vec::new();
    for line in &file.lines[start..=end] {
        // Skip signature lines so the definition itself is not counted
        // as a recursive call.
        if line.contains("fn ") {
            continue;
        }
        let mut rest = line.as_str();
        loop {
            let put = rest.find(call);
            let nest = rest.find(&nested);
            let (is_width_call, at) = match (put, nest) {
                (None, None) => break,
                (Some(p), None) => (true, p),
                (Some(p), Some(n)) if p < n => (true, p),
                (_, Some(n)) => (false, n),
            };
            if is_width_call {
                let tail = &rest[at + call.len()..];
                let ty: String =
                    tail.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                let after = &tail[ty.len()..];
                // Only real codec widths count — `get_mut(...)` and
                // friends are not cursor operations.
                const WIDTHS: [&str; 9] =
                    ["u8", "u16", "u32", "u64", "i64", "bool", "f64", "len", "bytes"];
                if WIDTHS.contains(&ty.as_str()) && after.starts_with('(') {
                    out.push(ty);
                }
                rest = tail;
            } else {
                out.push("nested".to_string());
                rest = &rest[at + nested.len()..];
            }
        }
    }
    out
}

/// Keeps only the first occurrence of each distinct token, preserving
/// order.
fn first_appearance(tokens: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for t in tokens {
        if !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

/// Runs the rule over one scanned file.
pub fn check(path: &str, file: &ScannedFile, report: &mut Report) {
    let fns = file.blocks("fn");
    let encoders: Vec<_> = fns.iter().filter(|b| b.name == "encode_snapshot").collect();
    let decoders: Vec<_> = fns.iter().filter(|b| b.name == "decode_snapshot").collect();
    if encoders.len() != decoders.len() {
        // An unpaired codec half is itself a pairing violation (unless
        // the file only *calls* the codecs, in which case no fn matched
        // and both lists are empty).
        if let Some(odd) = encoders.get(decoders.len()).or(decoders.get(encoders.len())) {
            if !file.allowed(odd.start, RULE) {
                report.push(Finding::new(
                    RULE,
                    Severity::Warn,
                    path,
                    odd.start + 1,
                    format!(
                        "{} has no positional counterpart: {} encode_snapshot fn(s) vs {} \
                         decode_snapshot fn(s) in this file",
                        odd.name,
                        encoders.len(),
                        decoders.len()
                    ),
                ));
            }
        }
        return;
    }
    for (enc, dec) in encoders.iter().zip(&decoders) {
        // Canonical form: the order in which distinct widths first
        // appear. Run lengths are loop-dependent and encode-side
        // `match` arms re-emit the same tag the decode side reads once,
        // so repetition counts are dynamic — but the first-appearance
        // order of widths is an execution invariant of structurally
        // parallel codecs.
        let wr = first_appearance(codec_tokens(file, enc.start, enc.end, "encode"));
        let rd = first_appearance(codec_tokens(file, dec.start, dec.end, "decode"));
        if wr != rd {
            if file.allowed(dec.start, RULE) {
                continue;
            }
            let diverge = wr.iter().zip(&rd).take_while(|(a, b)| a == b).count();
            let detail = if diverge < wr.len() && diverge < rd.len() {
                format!(
                    "first divergence at width {}: encode writes `put_{}`, decode reads `get_{}`",
                    diverge + 1,
                    wr[diverge],
                    rd[diverge]
                )
            } else if wr.len() > rd.len() {
                format!(
                    "encode writes {} distinct width(s) but decode reads only {} \
                     (missing `get_{}`)",
                    wr.len(),
                    rd.len(),
                    wr[diverge]
                )
            } else {
                format!(
                    "decode reads {} distinct width(s) but encode writes only {} \
                     (extra `get_{}`)",
                    rd.len(),
                    wr.len(),
                    rd[diverge]
                )
            };
            report.push(Finding::new(
                RULE,
                Severity::Warn,
                path,
                dec.start + 1,
                format!("encode/decode snapshot field sequences disagree: {detail}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Report {
        let file = ScannedFile::scan(src);
        let mut r = Report::new();
        check("t.rs", &file, &mut r);
        r
    }

    #[test]
    fn symmetric_codec_is_clean() {
        let src = "\
pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
    self.inner.encode_snapshot(w);
    w.put_u64(self.a);
    w.put_len(self.v.len());
    for x in &self.v {
        w.put_u32(*x);
    }
}
pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
    let inner = Inner::decode_snapshot(r)?;
    let a = r.get_u64()?;
    let n = r.get_len()?;
    let mut v = Vec::new();
    for _ in 0..n {
        v.push(r.get_u32()?);
    }
    Ok(Self { inner, a, v })
}
";
        assert!(run(src).findings.is_empty(), "{}", run(src).to_human());
    }

    #[test]
    fn width_mismatch_fires() {
        let src = "\
fn encode_snapshot(&self, w: &mut W) {
    w.put_u64(self.a);
    w.put_u8(self.b);
}
fn decode_snapshot(r: &mut R) -> PoResult<Self> {
    let a = r.get_u64()?;
    let b = r.get_u32()?;
    Ok(Self { a, b })
}
";
        let rep = run(src);
        assert_eq!(rep.findings.len(), 1, "{}", rep.to_human());
        assert_eq!(rep.findings[0].rule, RULE);
        assert!(rep.findings[0].message.contains("put_u8"), "{}", rep.findings[0].message);
    }

    #[test]
    fn missing_field_fires() {
        let src = "\
fn encode_snapshot(&self, w: &mut W) {
    w.put_u64(self.a);
    w.put_u8(self.b);
}
fn decode_snapshot(r: &mut R) -> PoResult<Self> {
    let a = r.get_u64()?;
    Ok(Self { a, b: 0 })
}
";
        let rep = run(src);
        assert_eq!(rep.findings.len(), 1);
        assert!(rep.findings[0].message.contains("missing"), "{}", rep.findings[0].message);
    }

    #[test]
    fn allow_escape_hatch() {
        let src = "\
fn encode_snapshot(&self, w: &mut W) {
    w.put_u64(self.a);
}
// po-analyze: allow(PA-L001)
fn decode_snapshot(r: &mut R) -> PoResult<Self> {
    Ok(Self { a: 0 })
}
";
        assert!(run(src).findings.is_empty());
    }
}
