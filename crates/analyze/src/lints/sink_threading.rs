//! PA-L004 — telemetry-sink threading completeness.
//!
//! Components hold their [`TelemetrySink`](po_telemetry::TelemetrySink)
//! as a struct field initialized to `noop()` and rely on the machine to
//! thread a shared active sink down after construction. A component
//! that declares a `sink: TelemetrySink` field but exposes no installer
//! (`set_telemetry` / `with_telemetry` / `install_telemetry`) is stuck
//! at noop forever: its events and counters can never reach a report.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L004";

/// Installer method names that count as threading support.
const INSTALLERS: [&str; 3] = ["fn set_telemetry", "fn with_telemetry", "fn install_telemetry"];

/// Runs the rule over one scanned file.
pub fn check(path: &str, file: &ScannedFile, report: &mut Report) {
    // Sink fields: `sink: TelemetrySink` lines inside struct bodies
    // (function parameters of the same shape live outside them).
    let mut sink_fields = Vec::new();
    for block in file.blocks("struct") {
        for (off, line) in file.lines[block.start..=block.end].iter().enumerate() {
            let t = line.trim().trim_end_matches(',');
            if t.trim_start_matches("pub ").trim() == "sink: TelemetrySink" {
                sink_fields.push(block.start + off);
            }
        }
    }
    if sink_fields.is_empty() {
        return;
    }
    let has_installer = file
        .lines
        .iter()
        .enumerate()
        .any(|(i, l)| !file.test_lines[i] && INSTALLERS.iter().any(|p| l.contains(p)));
    if has_installer {
        return;
    }
    for line in sink_fields {
        if file.allowed(line, RULE) {
            continue;
        }
        report.push(Finding::new(
            RULE,
            Severity::Warn,
            path,
            line + 1,
            "struct holds a `sink: TelemetrySink` field but this file defines no installer \
             (set_telemetry / with_telemetry / install_telemetry): the sink is stuck at noop \
             and the component's telemetry is unreachable"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Report {
        let file = ScannedFile::scan(src);
        let mut r = Report::new();
        check("t.rs", &file, &mut r);
        r
    }

    #[test]
    fn field_with_installer_is_clean() {
        let src = "\
pub struct M {
    sink: TelemetrySink,
}
impl M {
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }
}
";
        assert!(run(src).findings.is_empty(), "{}", run(src).to_human());
    }

    #[test]
    fn field_without_installer_fires() {
        let src = "\
pub struct M {
    pub sink: TelemetrySink,
}
impl M {
    pub fn new() -> Self {
        Self { sink: TelemetrySink::noop() }
    }
}
";
        let rep = run(src);
        assert_eq!(rep.findings.len(), 1, "{}", rep.to_human());
        assert_eq!(rep.findings[0].rule, RULE);
        assert_eq!(rep.findings[0].line, 2);
    }

    #[test]
    fn parameter_is_not_a_field() {
        let src = "\
pub fn run(
    config: Config,
    sink: TelemetrySink,
) -> Result {
    todo!()
}
";
        assert!(run(src).findings.is_empty(), "{}", run(src).to_human());
    }
}
