//! Front 2: project-specific source lints.
//!
//! Seven rules, each encoding a repo convention whose violation is a
//! real bug rather than a style nit:
//!
//! | Rule    | Severity | Meaning |
//! |---------|----------|---------|
//! | PA-L001 | warn     | snapshot encode/decode field sequences disagree |
//! | PA-L002 | warn     | telemetry counter emitted with no backing `Counter` stat field |
//! | PA-L003 | warn     | `FaultSite` variant missing from `ALL` or threaded nowhere |
//! | PA-L004 | warn     | component sink field with no telemetry installer |
//! | PA-L005 | warn     | binary target drives a machine outside the shared runner |
//! | PA-L006 | warn     | coherence message emitted without sink threading + mirrored counter |
//! | PA-L007 | warn     | sim/mc code touches PageTable/Omt internals past the xlate seam |
//!
//! All rules run on a [`tokenizer::ScannedFile`] — a self-contained
//! scanner with no compiler or registry dependencies — and honour a
//! `// po-analyze: allow(PA-Lxxx)` comment on the offending line or the
//! line above it.

pub mod backend_seam;
pub mod coherence_accounting;
pub mod fault_threading;
pub mod runner_usage;
pub mod sink_threading;
pub mod snapshot_pairing;
pub mod telemetry_parity;
pub mod tokenizer;

use crate::findings::Report;
use std::fs;
use std::path::{Path, PathBuf};
use tokenizer::ScannedFile;

/// Directory components never linted: build output, vendored shims
/// (external-API stand-ins), seeded true-positive fixtures, VCS state.
const SKIP_DIRS: [&str; 5] = ["target", "shims", "fixtures", ".git", "related"];

/// Runs the per-file rules (PA-L001/2/4/5/6/7) over one source text.
#[must_use]
pub fn lint_source(path_label: &str, text: &str) -> Report {
    let file = ScannedFile::scan(text);
    let mut report = Report::new();
    snapshot_pairing::check(path_label, &file, &mut report);
    telemetry_parity::check(path_label, &file, &mut report);
    sink_threading::check(path_label, &file, &mut report);
    runner_usage::check(path_label, &file, &mut report);
    coherence_accounting::check(path_label, &file, &mut report);
    backend_seam::check(path_label, &file, &mut report);
    report
}

/// Collects every `.rs` file under `root` (skipping [`SKIP_DIRS`]),
/// sorted for deterministic reports.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs every lint rule over the source tree rooted at `root`,
/// reporting paths relative to it.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn run_lints(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::new();
    let mut scanned: Vec<(String, ScannedFile)> = Vec::new();
    for path in collect_sources(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        let file = ScannedFile::scan(&text);
        snapshot_pairing::check(&rel, &file, &mut report);
        telemetry_parity::check(&rel, &file, &mut report);
        sink_threading::check(&rel, &file, &mut report);
        runner_usage::check(&rel, &file, &mut report);
        coherence_accounting::check(&rel, &file, &mut report);
        backend_seam::check(&rel, &file, &mut report);
        scanned.push((rel, file));
    }
    fault_threading::check(&scanned, &mut report);
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_all_per_file_rules() {
        // One source violating L002 and L004 at once.
        let src = "\
pub struct M {
    sink: TelemetrySink,
}
fn tick(sink: &TelemetrySink) {
    sink.count(\"m.unbacked\", 1);
}
";
        let report = lint_source("x.rs", src);
        let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"PA-L002"), "{rules:?}");
        assert!(rules.contains(&"PA-L004"), "{rules:?}");
    }
}
