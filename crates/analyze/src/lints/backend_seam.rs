//! PA-L007 — sim/mc code stays behind the `AddressTranslation` seam.
//!
//! The machine translates through a pluggable backend
//! (`po_xlate::AddressTranslation`); `crates/sim` and `crates/mc` are
//! backend-generic consumers. Code there that reaches into the
//! translation structures directly — walking the raw `Omt`, naming
//! `PageTable`, or constructing `OsModel`/`OverlayManager` state of its
//! own — silently assumes the overlay backend and breaks (or worse,
//! half-works) the moment a rival backend is selected. Observation
//! stays legal: the read-only `machine.os()` / `machine.overlay()` /
//! `machine.overlay_pages()` accessors and per-page probes
//! (`obitvec`, `has_overlay`, `omt_cache`) are the supported surface.
//!
//! Deliberate exceptions (e.g. a debugging tool that must dump raw OMT
//! entries) carry `// po-analyze: allow(PA-L007)` on or above the line.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L007";

/// Source patterns that mean "this code bypasses the translation
/// seam". `.omt()` is the raw table accessor (the parenthesis keeps
/// `.omt_cache(` legal); the type names catch direct construction or
/// manipulation of backend-private structures.
const MARKERS: [&str; 6] =
    [".omt()", "PageTable", "Omt::", "HierarchicalOmt", "OsModel::new(", "OverlayManager::new("];

/// Whether `path` (repo-relative, `/`-separated) is backend-generic
/// simulator code — the scope the seam protects.
fn is_seam_consumer(path: &str) -> bool {
    path.starts_with("crates/sim/") || path.starts_with("crates/mc/")
}

/// Runs the rule over one scanned file.
pub fn check(path: &str, file: &ScannedFile, report: &mut Report) {
    if !is_seam_consumer(path) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.allowed(i, RULE) {
            continue;
        }
        let Some(marker) = MARKERS.iter().find(|m| line.contains(*m)) else {
            continue;
        };
        report.push(Finding::new(
            RULE,
            Severity::Warn,
            path,
            i + 1,
            format!(
                "backend-generic code touches translation internals (`{marker}`) instead of \
                 going through the AddressTranslation trait (po_xlate): direct PageTable/Omt \
                 access assumes the overlay backend and breaks under any rival selected via \
                 SystemConfig::backend"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Report {
        let file = ScannedFile::scan(src);
        let mut r = Report::new();
        check(path, &file, &mut r);
        r
    }

    #[test]
    fn raw_omt_walk_in_sim_fires() {
        let src = "\
fn sweep(machine: &Machine) {
    for (&opn, entry) in machine.overlay().omt().iter() {
        drop((opn, entry));
    }
}
";
        let rep = run("crates/sim/src/spec_mirror.rs", src);
        assert_eq!(rep.findings.len(), 1, "{}", rep.to_human());
        assert_eq!(rep.findings[0].rule, RULE);
    }

    #[test]
    fn the_same_source_in_the_backend_crates_is_ignored() {
        let src = "fn f(m: &OverlayManager) { let _ = m.omt(); }\n";
        for path in ["crates/xlate/src/lib.rs", "crates/core/src/manager.rs", "crates/vm/src/os.rs"]
        {
            assert!(run(path, src).findings.is_empty(), "{path}");
        }
    }

    #[test]
    fn supported_observation_surface_is_clean() {
        let src = "\
fn observe(machine: &Machine) {
    let _ = machine.overlay().obitvec(opn);
    let _ = machine.overlay().omt_cache().hit_rate();
    let _ = machine.overlay_pages();
    let _ = machine.os().translate(asid, va);
}
";
        assert!(run("crates/sim/src/runner.rs", src).findings.is_empty());
    }

    #[test]
    fn direct_state_construction_fires() {
        for marker in
            ["OsModel::new(cfg)", "OverlayManager::new(cfg)", "PageTable::new()", "Omt::new()"]
        {
            let src = format!("fn f() {{ let s = {marker}; }}\n");
            let rep = run("crates/mc/src/sched.rs", &src);
            assert_eq!(rep.findings.len(), 1, "marker {marker}: {}", rep.to_human());
        }
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "\
fn dump(machine: &Machine) {
    // po-analyze: allow(PA-L007)
    for (&opn, _) in machine.overlay().omt().iter() {}
}
";
        assert!(run("crates/sim/src/debug.rs", src).findings.is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut os = po_vm::OsModel::new(po_vm::VmConfig::default());
        os.spawn().unwrap();
    }
}
";
        assert!(run("crates/sim/src/trace_io.rs", src).findings.is_empty());
    }
}
