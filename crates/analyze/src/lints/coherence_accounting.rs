//! PA-L006 — coherence-message emission sites thread the telemetry
//! sink and bump their mirrored counter.
//!
//! The multi-core concurrency verifier (PA-C) replays the machine's
//! coherence annotation stream; a TLB patch or shootdown performed
//! without emitting its event *silently removes a happens-before edge*
//! — exactly the bug shape the seeded race canary plants on purpose.
//! So the same parity discipline PA-L002 enforces for counters applies
//! to coherence traffic: every function in the simulator or multi-core
//! machinery (`sim/`, `mc/` paths) that delivers an OBitVector update
//! (`.coherence_obit_update(`) or invalidates an entry (`.shootdown(`)
//! must both reference the telemetry sink and bump a `coherence_*`
//! stat counter, so the event stream, the stats, and the functional
//! state move together.
//!
//! Deliberate functional-only paths (the byte oracle's `poke`, which
//! models end state rather than traffic) carry
//! `// po-analyze: allow(PA-L006)` on or above the call line.

use super::tokenizer::ScannedFile;
use crate::findings::{Finding, Report, Severity};

/// The rule identifier.
pub const RULE: &str = "PA-L006";

/// Call patterns that emit coherence traffic. The leading dot keeps
/// `fn shootdown(` definitions (the TLB crate's own implementation)
/// out of scope.
const MARKERS: [&str; 2] = [".coherence_obit_update(", ".shootdown("];

/// Whether `path` (repo-relative, `/`-separated) hosts machine-driving
/// code whose coherence traffic the PA-C verifier replays. The TLB
/// crate itself (the mechanism) and bench code are out of scope.
fn in_scope(path: &str) -> bool {
    path.contains("sim/") || path.contains("mc/")
}

/// Runs the rule over one scanned file.
pub fn check(path: &str, file: &ScannedFile, report: &mut Report) {
    if !in_scope(path) {
        return;
    }
    for block in file.blocks("fn") {
        let body = &file.lines[block.start..=block.end];
        let threads_sink = body.iter().any(|l| l.contains("sink"));
        let bumps_counter = body
            .iter()
            .any(|l| l.contains("coherence_") && (l.contains(".inc(") || l.contains(".add(")));
        if threads_sink && bumps_counter {
            continue;
        }
        for i in block.start..=block.end {
            if file.test_lines[i] || file.allowed(i, RULE) {
                continue;
            }
            let Some(marker) = MARKERS.iter().find(|m| file.lines[i].contains(*m)) else {
                continue;
            };
            let missing = match (threads_sink, bumps_counter) {
                (false, false) => {
                    "neither threads the telemetry sink nor bumps a mirrored \
                                   `coherence_*` counter"
                }
                (false, true) => "never threads the telemetry sink",
                (true, false) => "never bumps a mirrored `coherence_*` counter",
                (true, true) => unreachable!("accounted functions are skipped above"),
            };
            report.push(Finding::new(
                RULE,
                Severity::Warn,
                path,
                i + 1,
                format!(
                    "coherence message emitted (`{marker}`) but fn `{}` {missing}: the PA-C \
                     happens-before verifier replays the annotation stream, and an unannotated \
                     message silently deletes a synchronization edge",
                    block.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Report {
        let file = ScannedFile::scan(src);
        let mut r = Report::new();
        check(path, &file, &mut r);
        r
    }

    const UNACCOUNTED: &str = "\
fn deliver(&mut self) {
    for tlb in &mut self.tlbs {
        tlb.coherence_obit_update(asid, vpn, line, true);
    }
}
";

    #[test]
    fn unaccounted_delivery_fires_in_scope() {
        let rep = run("crates/mc/src/sched.rs", UNACCOUNTED);
        assert_eq!(rep.findings.len(), 1, "{}", rep.to_human());
        assert_eq!(rep.findings[0].rule, RULE);
        assert!(rep.findings[0].message.contains("neither threads"), "{}", rep.to_human());
    }

    #[test]
    fn tlb_crate_and_bench_are_out_of_scope() {
        assert!(run("crates/tlb/src/coherence.rs", UNACCOUNTED).findings.is_empty());
        assert!(run("crates/bench/benches/components.rs", UNACCOUNTED).findings.is_empty());
    }

    #[test]
    fn fn_definitions_do_not_count_as_emission() {
        let src = "\
fn shootdown(&mut self, asid: Asid, vpn: Vpn) -> bool {
    self.l1.invalidate(asid, vpn) | self.l2.invalidate(asid, vpn)
}
";
        assert!(run("crates/sim/src/machine.rs", src).findings.is_empty());
    }

    #[test]
    fn accounted_site_is_clean() {
        let src = "\
fn promote(&mut self) {
    for (i, tlb) in self.tlbs.iter_mut().enumerate() {
        if tlb.shootdown(asid, vpn) {
            self.stats.coherence_invalidations.inc();
        }
        self.sink.emit(|| TelemetryEvent::CohShootdownAck { core: 0, from: i as u32, opn: 0 });
    }
}
";
        assert!(run("crates/sim/src/machine.rs", src).findings.is_empty());
    }

    #[test]
    fn sink_without_counter_names_the_gap() {
        let src = "\
fn promote(&mut self) {
    for tlb in &mut self.tlbs {
        tlb.shootdown(asid, vpn);
    }
    self.sink.emit(|| TelemetryEvent::CohShootdownEnd { core: 0, opn: 0 });
}
";
        let rep = run("crates/sim/src/machine.rs", src);
        assert_eq!(rep.findings.len(), 1, "{}", rep.to_human());
        assert!(rep.findings[0].message.contains("never bumps"), "{}", rep.to_human());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "\
fn poke(&mut self) {
    for tlb in &mut self.tlbs {
        // po-analyze: allow(PA-L006)
        tlb.coherence_obit_update(asid, vpn, line, true);
    }
}
";
        assert!(run("crates/sim/src/machine.rs", src).findings.is_empty());
    }
}
