//! The abstract domain of the trace verifier.
//!
//! Two pieces:
//!
//! * [`Tri`] — classic three-valued logic for per-page facts
//!   (mapped, copy-on-write, writable, overlay-enabled). `Yes`/`No` are
//!   proofs; `Maybe` is the sound "don't know".
//! * [`LineSet`] — the per-page OBitVector lattice: a `must` mask
//!   (lines proven in the overlay) and a `may` mask (lines possibly in
//!   the overlay), with `must ⊆ may` as the structural invariant. The
//!   concrete OBitVector `v` is abstracted soundly iff
//!   `must ⊆ v ⊆ may`.

/// Three-valued truth: definitely false / unknown / definitely true.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tri {
    /// Proven false in every execution.
    No,
    /// True in some executions the abstraction cannot separate.
    Maybe,
    /// Proven true in every execution.
    Yes,
}

impl Tri {
    /// Abstraction of a known concrete boolean.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Tri::Yes
        } else {
            Tri::No
        }
    }

    /// The fact holds in every execution.
    #[must_use]
    pub fn definitely(self) -> bool {
        self == Tri::Yes
    }

    /// The fact holds in at least one execution the abstraction tracks.
    #[must_use]
    pub fn possibly(self) -> bool {
        self != Tri::No
    }

    /// Least upper bound: keeps only what both branches agree on.
    #[must_use]
    pub fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Maybe
        }
    }

    /// Kleene conjunction.
    #[must_use]
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::No, _) | (_, Tri::No) => Tri::No,
            (Tri::Yes, Tri::Yes) => Tri::Yes,
            _ => Tri::Maybe,
        }
    }

    /// Kleene disjunction.
    #[must_use]
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Yes, _) | (_, Tri::Yes) => Tri::Yes,
            (Tri::No, Tri::No) => Tri::No,
            _ => Tri::Maybe,
        }
    }
}

/// Kleene negation.
impl std::ops::Not for Tri {
    type Output = Tri;

    fn not(self) -> Tri {
        match self {
            Tri::No => Tri::Yes,
            Tri::Maybe => Tri::Maybe,
            Tri::Yes => Tri::No,
        }
    }
}

/// A must/may pair of 64-bit line masks (`must ⊆ may`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineSet {
    /// Lines present in every execution.
    pub must: u64,
    /// Lines present in at least one execution.
    pub may: u64,
}

impl LineSet {
    /// The empty set (both masks zero) — also the abstraction of
    /// "definitely no overlay".
    pub const EMPTY: LineSet = LineSet { must: 0, may: 0 };

    /// Whether line `line` is in the set, as a three-valued fact.
    #[must_use]
    pub fn contains(self, line: usize) -> Tri {
        let bit = 1u64 << line;
        if self.must & bit != 0 {
            Tri::Yes
        } else if self.may & bit != 0 {
            Tri::Maybe
        } else {
            Tri::No
        }
    }

    /// Adds a line that is inserted in every execution.
    pub fn insert_must(&mut self, line: usize) {
        self.must |= 1 << line;
        self.may |= 1 << line;
    }

    /// Adds a line that is inserted in some executions only.
    pub fn insert_may(&mut self, line: usize) {
        self.may |= 1 << line;
    }

    /// Whether the set is non-empty, as a three-valued fact.
    #[must_use]
    pub fn non_empty(self) -> Tri {
        if self.must != 0 {
            Tri::Yes
        } else if self.may != 0 {
            Tri::Maybe
        } else {
            Tri::No
        }
    }

    /// Drops the `must` half (an operation may or may not have cleared
    /// the set), keeping `may` as the superset of both outcomes.
    pub fn weaken(&mut self) {
        self.must = 0;
    }

    /// Structural invariant of the domain.
    #[must_use]
    pub fn well_formed(self) -> bool {
        self.must & !self.may == 0
    }

    /// Number of lines possibly present.
    #[must_use]
    pub fn may_count(self) -> usize {
        self.may.count_ones() as usize
    }

    /// Number of lines definitely present.
    #[must_use]
    pub fn must_count(self) -> usize {
        self.must.count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_algebra() {
        assert_eq!(Tri::Yes.and(Tri::Maybe), Tri::Maybe);
        assert_eq!(Tri::No.and(Tri::Maybe), Tri::No);
        assert_eq!(Tri::Yes.or(Tri::Maybe), Tri::Yes);
        assert_eq!(Tri::No.or(Tri::Maybe), Tri::Maybe);
        assert_eq!(!Tri::Maybe, Tri::Maybe);
        assert_eq!(Tri::Yes.join(Tri::No), Tri::Maybe);
        assert_eq!(Tri::Yes.join(Tri::Yes), Tri::Yes);
        assert!(Tri::from_bool(true).definitely());
        assert!(!Tri::from_bool(false).possibly());
    }

    #[test]
    fn lineset_tracks_must_and_may() {
        let mut s = LineSet::EMPTY;
        assert_eq!(s.contains(3), Tri::No);
        s.insert_may(3);
        assert_eq!(s.contains(3), Tri::Maybe);
        s.insert_must(3);
        assert_eq!(s.contains(3), Tri::Yes);
        assert_eq!(s.non_empty(), Tri::Yes);
        s.weaken();
        assert_eq!(s.contains(3), Tri::Maybe);
        assert_eq!(s.non_empty(), Tri::Maybe);
        assert!(s.well_formed());
        assert_eq!(s.may_count(), 1);
        assert_eq!(s.must_count(), 0);
    }
}
