//! The per-line coherence protocol state machine and the shootdown
//! window bookkeeping (the PA-C006 transition invariants).
//!
//! The overlay coherence protocol is MSI-shaped at line granularity
//! (§4.3.3): a line's mapping is **Invalid** until some core acquires
//! overlaying-read-exclusive rights, after which it is **Owned** by
//! that core; single-line OBitVector-update messages may only be sent
//! by the current owner; and a shootdown (promotion, discard, reclaim,
//! compaction remap) invalidates every line of the page. The verifier
//! replays the annotation stream against these transitions; a stream a
//! correct machine cannot produce is a PA-C006 finding.

use std::collections::{BTreeMap, BTreeSet};

/// Per-line ownership: which core last acquired read-exclusive rights.
/// Absent means Invalid (no owner since the last shootdown).
#[derive(Clone, Debug, Default)]
pub struct LineProtocol {
    owners: BTreeMap<(u64, u8), u32>,
}

impl LineProtocol {
    /// The Invalid/Owned → Owned(`core`) transition for
    /// (`opn`, `line`), returning the previous owner if there was one.
    ///
    /// Re-acquisition is *not* a violation: a TLB entry evicted for
    /// capacity and refilled comes back with a stale OBitVector, so a
    /// core legitimately re-runs the §4.3.3 overlaying-write path — and
    /// re-broadcasts read-exclusive — for a line that already exists.
    /// The broadcast re-synchronizes every cached copy, so the model
    /// simply refreshes ownership. The protocol violation the verifier
    /// flags instead is acquisition while the page's shootdown window
    /// is open (see the PA-C006 handling in `concurrency`).
    pub fn acquire_exclusive(&mut self, opn: u64, line: u8, core: u32) -> Option<u32> {
        self.owners.insert((opn, line), core)
    }

    /// Current owner of (`opn`, `line`), if any.
    #[must_use]
    pub fn owner(&self, opn: u64, line: u8) -> Option<u32> {
        self.owners.get(&(opn, line)).copied()
    }

    /// Invalidates every line of `opn` (a completed shootdown).
    pub fn reset_page(&mut self, opn: u64) {
        self.owners.retain(|&(o, _), _| o != opn);
    }
}

/// An open TLB-shootdown window for one page.
#[derive(Clone, Debug)]
pub struct ShootdownWindow {
    /// Initiating core.
    pub initiator: u32,
    /// Remote cores that have acknowledged so far.
    pub acked: BTreeSet<u32>,
    /// Whether the window was opened by a promotion commit
    /// (`CohPromote` immediately preceding the begin) — the PA-C003
    /// visibility rule applies only to these.
    pub promote: bool,
    /// 1-based source line of the `CohShootdownBegin` (finding anchor).
    pub opened_at: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_acquisition_and_reset() {
        let mut p = LineProtocol::default();
        assert_eq!(p.acquire_exclusive(7, 3, 0), None);
        assert_eq!(p.owner(7, 3), Some(0));
        assert_eq!(p.acquire_exclusive(7, 3, 1), Some(0), "re-acquire transfers ownership");
        assert_eq!(p.owner(7, 3), Some(1));
        p.reset_page(7);
        assert_eq!(p.owner(7, 3), None);
        assert_eq!(p.acquire_exclusive(7, 3, 2), None, "clean re-acquire after shootdown");
    }

    #[test]
    fn reset_is_per_page() {
        let mut p = LineProtocol::default();
        p.acquire_exclusive(1, 0, 0);
        p.acquire_exclusive(2, 0, 0);
        p.reset_page(1);
        assert_eq!(p.owner(1, 0), None);
        assert_eq!(p.owner(2, 0), Some(0));
    }
}
