//! The abstract interpreter: symbolic execution of a harness trace over
//! the [`lattice`](super::lattice) domain.
//!
//! The interpreter mirrors the deterministic-simulation harness
//! (`po_sim::sim_test`) op for op — the same process-selector
//! resolution, the same VPN/VA clamping, the same write-routing rules
//! the machine itself uses — but tracks each `(process, vpage)` pair as
//! an [`AbsPage`]: three-valued PTE flags, a must/may OBitVector, a
//! must/may set of cache-resident overlay lines with no OMS backing
//! yet, and a TLB-staleness bit.
//!
//! The staleness bit is load-bearing: the OS CoW path privatizes pages
//! *without* a TLB shootdown, so a later timed store can route through
//! a stale TLB entry (`cow=1, writable=0, overlay_enabled=1`) and
//! create an overlay on an already-private page. Whenever a page's TLB
//! image may diverge from its page-table state, the interpreter widens
//! instead of concluding. (Commit and discard promotions both shoot
//! down — commit's shootdown was missing from the machine until the
//! verifier-vs-runtime agreement test caught a fuzz trace crashing on a
//! stale post-commit OBitVector.)
//!
//! Soundness contract (checked by the verifier-vs-runtime agreement
//! test): for every page, `must ⊆ concrete OBitVector ⊆ may`, a
//! `Tri::Yes`/`Tri::No` flag matches the concrete PTE, and the process
//! count is exact — as long as the state never [degrades]
//! (`AbsState::degraded`). Degradation triggers when frame or OMS
//! allocation may fail (the upper-bound accounting crosses the
//! configured physical memory) and suppresses every must-style claim.

use super::lattice::{LineSet, Tri};
use crate::findings::{Finding, Report, Severity};
use po_overlay::SegmentClass;
use po_sim::{SystemConfig, TraceOp, MAX_MAP_PAGES, MAX_VPN_SPAN};
use po_types::geometry::{LINES_PER_PAGE, PAGE_SIZE};
use po_types::Asid;
use std::collections::BTreeMap;

/// Options for one verification run.
#[derive(Clone, Debug, Default)]
pub struct VerifierOptions {
    /// Overlay-store budget in bytes: enables the PA-V005 (possible OMS
    /// overflow) rule against this limit.
    pub oms_limit: Option<u64>,
    /// Crash-point query indices (0-based, one poll per op — the
    /// `run_crash_convergence` schedule): enables PA-V004 (unreachable
    /// crash point) for each.
    pub crash_queries: Vec<u64>,
    /// Assume a fault plan may be armed during replay: every allocation
    /// and overlay operation may fail, so the interpreter starts
    /// degraded and reports only fault-independent findings.
    pub assume_faults: bool,
    /// Fragmentation headroom for PA-V005, as a fraction of peak
    /// demand: the §4.4.3 allocator strands freed bytes in the small
    /// segment classes, so a budget that only covers the live peak can
    /// still overflow under class churn. With slack `F` the rule fires
    /// when `peak × (1 + F)` exceeds the budget. `0.0` (the default)
    /// checks the raw peak; §4.4.2 compaction is what keeps small
    /// slack values honest on the real machine.
    pub frag_slack: f64,
}

/// One core's abstract TLB image of a page. The global
/// [`AbsPage::tlb_clean`]/[`AbsPage::stale_may`] pair joins these over
/// every core (and stays the source of truth for whole-trace rules);
/// the per-core views recover precision for timed ops, which route
/// through exactly one core's TLB: a core that provably holds no entry
/// (`cached == false`) performs a fresh fill and sees exact page-table
/// state even while another core's image is stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbView {
    /// May this core's TLB hold an entry for the page at all? `false`
    /// until a timed access on this core since the last full shootdown
    /// or flush of the page.
    pub cached: bool,
    /// `true` while this core's possible entry provably agrees with the
    /// page table. An uncached view is vacuously clean (the next access
    /// on this core refills fresh).
    pub clean: bool,
    /// Upper bound on the OBitVector of this core's possible entry
    /// (coherence patches keep cached entries' OBitVectors current, so
    /// this accumulates `overlay.may` from fill time onward).
    pub stale_may: u64,
}

impl TlbView {
    /// The view of a core with no entry: vacuously clean.
    pub const EMPTY: Self = Self { cached: false, clean: true, stale_may: 0 };
}

impl Default for TlbView {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Abstract per-page state. Flag fields describe the page *given that
/// it is mapped*; they are meaningless while `mapped` is `No`.
#[derive(Clone, Debug)]
pub struct AbsPage {
    /// Is there a translation for this page?
    pub mapped: Tri,
    /// PTE writable flag.
    pub writable: Tri,
    /// PTE copy-on-write flag.
    pub cow: Tri,
    /// PTE overlay-enabled flag.
    pub enabled: Tri,
    /// The OBitVector abstraction: `must ⊆ concrete ⊆ may`.
    pub overlay: LineSet,
    /// Overlay lines written but possibly not yet backed by an OMS slot
    /// (cache-resident or store-pending). `must` ≠ 0 at end of trace is
    /// the PR-2 bug shape: lines resident without backing slots.
    pub resident: LineSet,
    /// Union of `overlay.may` since the last full shootdown of this
    /// page: an upper bound on any stale TLB entry's OBitVector. Drives
    /// the promotion-possible check through stale entries.
    pub stale_may: u64,
    /// `false` once a TLB entry for this page may disagree with the
    /// page table (privatization without shootdown).
    pub tlb_clean: bool,
    /// Per-core TLB images, indexed by core id and grown on demand; an
    /// absent slot is [`TlbView::EMPTY`]. Always at least as precise as
    /// the global `tlb_clean`/`stale_may` join above.
    pub views: Vec<TlbView>,
}

impl Default for AbsPage {
    fn default() -> Self {
        Self {
            mapped: Tri::No,
            writable: Tri::No,
            cow: Tri::No,
            enabled: Tri::No,
            overlay: LineSet::EMPTY,
            resident: LineSet::EMPTY,
            stale_may: 0,
            tlb_clean: true,
            views: Vec::new(),
        }
    }
}

impl AbsPage {
    /// Structural invariants of the abstraction itself.
    fn well_formed(&self) -> bool {
        self.overlay.well_formed()
            && self.resident.well_formed()
            && self.overlay.may & !self.stale_may == 0
            && (self.overlay.must == 0 || self.mapped == Tri::Yes)
            // Per-core views refine the global join: never dirtier than
            // `tlb_clean`, never staler than `stale_may`, and an entry
            // that cannot exist is vacuously clean.
            && self.views.iter().all(|v| {
                v.stale_may & !self.stale_may == 0
                    && (v.cached || v.clean)
                    && (!self.tlb_clean || v.clean)
            })
    }

    /// This core's TLB image (a copy; absent slots are empty views).
    #[must_use]
    pub fn view(&self, core: usize) -> TlbView {
        self.views.get(core).copied().unwrap_or(TlbView::EMPTY)
    }

    fn view_mut(&mut self, core: usize) -> &mut TlbView {
        if self.views.len() <= core {
            self.views.resize(core + 1, TlbView::EMPTY);
        }
        &mut self.views[core]
    }

    /// A timed access on `core` touched this page: the core's TLB now
    /// holds an entry whose OBitVector is bounded by the current
    /// `overlay.may` (exact at fill time, coherence-patched afterwards).
    fn touch_view(&mut self, core: usize) {
        let may = self.overlay.may;
        let v = self.view_mut(core);
        v.cached = true;
        v.stale_may |= may;
    }

    /// The page table changed without a shootdown: every possible
    /// cached entry may now disagree with it.
    fn dirty_cached_views(&mut self) {
        for v in &mut self.views {
            if v.cached {
                v.clean = false;
            }
        }
    }

    /// The page's possible OBitVector grew: coherence patches propagate
    /// the bits into every cached entry.
    fn note_stale_views(&mut self, bits: u64) {
        for v in &mut self.views {
            if v.cached {
                v.stale_may |= bits;
            }
        }
    }

    /// A full shootdown (or flush) of this page: no core holds an
    /// entry any more.
    fn reset_views(&mut self) {
        self.views.clear();
    }
}

/// The whole-trace abstract state after interpretation.
#[derive(Clone, Debug, Default)]
pub struct AbsState {
    /// Number of live processes (spawn order = harness `procs` order).
    pub procs: usize,
    /// Whether `procs` is exact (fork can fail once degraded).
    pub procs_exact: bool,
    /// Per-`(process index, vpn)` page states. An absent key means
    /// "definitely unmapped" — while the state is not collapsed.
    pub pages: BTreeMap<(usize, u64), AbsPage>,
    /// `true` once an allocation may have failed: must-claims and
    /// state-dependent findings are suppressed from that point on.
    pub degraded: bool,
    /// `true` once per-page tracking was abandoned entirely (a fork
    /// under possible memory pressure): `pages` holds nothing usable.
    pub collapsed: bool,
    /// Peak possible OMS segment demand over the trace, in bytes
    /// (sum over pages of the smallest legal segment class covering the
    /// page's `may` line count).
    pub peak_oms_demand: u64,
}

/// Process cap of the OS model: ASIDs are 15-bit and `next_asid` starts
/// at 1, so at most `Asid::MAX` processes ever spawn.
const PROC_CAP: usize = Asid::MAX as usize;

/// Interpreter for one trace.
struct Interp<'a> {
    config: &'a SystemConfig,
    opts: &'a VerifierOptions,
    subject: &'a str,
    st: AbsState,
    report: Report,
    /// Upper bound on regular frames allocated so far.
    frames_ub: u64,
    /// Configured core count (≥ 1), mirroring the machine's TLB array.
    cores: usize,
    /// Core the next timed op issues on (`OnCore` routing, resolved
    /// modulo `cores` exactly as the harness does).
    current_core: usize,
}

impl<'a> Interp<'a> {
    fn new(config: &'a SystemConfig, opts: &'a VerifierOptions, subject: &'a str) -> Self {
        let mut st = AbsState { procs_exact: true, ..AbsState::default() };
        if opts.assume_faults {
            st.degraded = true;
        }
        Self {
            config,
            opts,
            subject,
            st,
            report: Report::new(),
            frames_ub: 0,
            cores: config.cores.max(1),
            current_core: 0,
        }
    }

    /// `true` while definite (must-style) conclusions are allowed.
    fn precise(&self) -> bool {
        !self.st.degraded
    }

    fn finding(&mut self, rule: &'static str, severity: Severity, op_idx: usize, msg: String) {
        // `usize::MAX` marks a whole-trace finding, rendered as line 0.
        let line = op_idx.wrapping_add(1);
        self.report.push(Finding::new(rule, severity, self.subject, line, msg));
    }

    /// A finding that is only sound when the interpreter is precise.
    fn precise_finding(
        &mut self,
        rule: &'static str,
        severity: Severity,
        op_idx: usize,
        msg: String,
    ) {
        if self.precise() {
            self.finding(rule, severity, op_idx, msg);
        }
    }

    /// Accounts an upper bound of `frames` freshly allocated 4 KB
    /// frames and degrades once physical memory may be exhausted.
    fn note_alloc(&mut self, frames: u64) {
        self.frames_ub += frames;
        let chunk_bytes = self.config.overlay.oms_chunk_frames * PAGE_SIZE as u64;
        let oms_chunks = self.st.peak_oms_demand.div_ceil(chunk_bytes.max(1));
        let oms_frames_ub = oms_chunks * self.config.overlay.oms_chunk_frames;
        if self.frames_ub + oms_frames_ub >= self.config.vm.total_frames {
            self.st.degraded = true;
        }
    }

    /// Resolves a harness process selector. `None` = no live process
    /// (the op is a no-op); resolution is only trusted while the
    /// process count is exact.
    fn resolve(&self, sel: u32) -> Option<usize> {
        if !self.st.procs_exact || self.st.procs == 0 {
            None
        } else {
            Some(sel as usize % self.st.procs)
        }
    }

    fn page_mut(&mut self, p: usize, vpn: u64) -> &mut AbsPage {
        self.st.pages.entry((p, vpn)).or_default()
    }

    fn page_ref(&self, p: usize, vpn: u64) -> AbsPage {
        self.st.pages.get(&(p, vpn)).cloned().unwrap_or_default()
    }

    /// All page keys belonging to process `p`.
    fn keys_of(&self, p: usize) -> Vec<u64> {
        self.st.pages.range((p, 0)..=(p, u64::MAX)).map(|(&(_, vpn), _)| vpn).collect()
    }

    /// Emits a PA-V001 dead-op finding when no process exists yet.
    /// Returns `Some(proc index)` when the selector resolves.
    fn resolve_or_dead(&mut self, sel: u32, op_idx: usize, what: &str) -> Option<usize> {
        match self.resolve(sel) {
            Some(p) => Some(p),
            None => {
                if self.st.procs_exact && self.st.procs == 0 {
                    self.precise_finding(
                        "PA-V001",
                        Severity::Warn,
                        op_idx,
                        format!("{what} before any process is spawned: the op is dead"),
                    );
                }
                None
            }
        }
    }

    /// Sum over pages of the smallest legal OMS segment able to hold
    /// each page's possible overlay (segment-class legality: 256 B /
    /// 512 B / 1 KB / 2 KB / 4 KB, clamped to the configured minimum).
    fn oms_demand(&self) -> u64 {
        let min = self.config.overlay.min_segment_class;
        self.st
            .pages
            .values()
            .filter(|pg| pg.overlay.may != 0)
            .map(|pg| {
                let class = SegmentClass::for_lines(pg.overlay.may_count());
                class.bytes().max(min.bytes()) as u64
            })
            .sum()
    }

    fn update_demand(&mut self) {
        let d = self.oms_demand();
        if d > self.st.peak_oms_demand {
            self.st.peak_oms_demand = d;
            // Re-check the physical bound with the larger OMS estimate.
            self.note_alloc(0);
        }
    }

    // ------------------------------------------------------------------
    // Per-op transfer functions.
    // ------------------------------------------------------------------

    fn op_spawn(&mut self, i: usize) {
        if self.st.procs >= PROC_CAP {
            self.precise_finding(
                "PA-V001",
                Severity::Warn,
                i,
                format!("spawn after the {PROC_CAP}-process ASID space is exhausted: must fail"),
            );
            return;
        }
        // spawn_process registers an empty address space — no frame
        // allocation, so it succeeds exactly iff the cap is not reached.
        self.st.procs += 1;
    }

    fn op_map(&mut self, i: usize, sel: u32, start: u64, count: u32) {
        let Some(p) = self.resolve_or_dead(sel, i, "map") else { return };
        if count == 0 {
            self.precise_finding(
                "PA-V001",
                Severity::Warn,
                i,
                "map of zero pages: the op is dead".to_string(),
            );
            return;
        }
        let start = start % MAX_VPN_SPAN;
        let mut fresh = 0u64;
        for k in 0..count.min(MAX_MAP_PAGES) as u64 {
            let vpn = start + k;
            let precise = self.precise();
            let page = self.page_mut(p, vpn);
            match page.mapped {
                Tri::Yes => {} // the harness never remaps
                Tri::No => {
                    *page = AbsPage {
                        mapped: if precise { Tri::Yes } else { Tri::Maybe },
                        writable: Tri::Yes,
                        cow: Tri::No,
                        enabled: Tri::No,
                        ..AbsPage::default()
                    };
                    fresh += 1;
                }
                Tri::Maybe => {
                    // Either already mapped (unchanged) or mapped fresh.
                    page.writable = page.writable.join(Tri::Yes);
                    page.cow = page.cow.join(Tri::No);
                    page.enabled = page.enabled.join(Tri::No);
                    page.overlay.weaken();
                    page.resident.weaken();
                    fresh += 1;
                }
            }
        }
        self.note_alloc(fresh);
    }

    fn op_fork(&mut self, i: usize, sel: u32) {
        let Some(parent) = self.resolve_or_dead(sel, i, "fork") else {
            if !self.st.procs_exact {
                // A fork whose parent set is unknown: give up tracking.
                self.st.collapsed = true;
                self.st.pages.clear();
            }
            return;
        };
        if self.st.procs >= PROC_CAP {
            self.precise_finding(
                "PA-V001",
                Severity::Warn,
                i,
                format!("fork after the {PROC_CAP}-process ASID space is exhausted: must fail"),
            );
            return;
        }
        if self.st.degraded {
            // Fork allocates frames while materializing parent overlays;
            // under possible memory pressure it may fail, making the
            // process count — and with it every selector — unknowable.
            self.st.procs_exact = false;
            self.st.collapsed = true;
            self.st.pages.clear();
            self.st.procs += 1; // upper bound only; unusable anyway
            return;
        }
        let child = self.st.procs;
        let overlay_mode = self.config.overlay_mode;
        for vpn in self.keys_of(parent) {
            let page = self.page_mut(parent, vpn);
            // In overlay mode fork first materializes (commits) every
            // parent overlay into a private frame.
            let had_overlay = page.overlay.may != 0;
            if had_overlay {
                page.overlay = LineSet::EMPTY;
                page.resident = LineSet::EMPTY;
            }
            // os.fork then re-shares every present page CoW (both
            // modes); overlay semantics are enabled only in overlay
            // mode. fork ends with a full TLB flush of both ASIDs.
            if page.mapped.possibly() {
                match page.mapped {
                    Tri::Yes => {
                        page.writable = Tri::No;
                        page.cow = Tri::Yes;
                        if overlay_mode {
                            page.enabled = Tri::Yes;
                        }
                    }
                    _ => {
                        page.writable = page.writable.join(Tri::No);
                        page.cow = page.cow.join(Tri::Yes);
                        if overlay_mode {
                            page.enabled = page.enabled.join(Tri::Yes);
                        }
                    }
                }
            }
            page.tlb_clean = true;
            page.stale_may = page.overlay.may;
            page.reset_views(); // fork ends with a full TLB flush
            let clone = page.clone();
            if had_overlay {
                self.note_alloc(1); // materialize may copy the frame
            }
            self.st.pages.insert((child, vpn), clone);
        }
        self.st.procs += 1;
    }

    fn op_poke(&mut self, i: usize, sel: u32, raw_va: u64) {
        let Some(p) = self.resolve_or_dead(sel, i, "poke") else { return };
        let va = raw_va % (MAX_VPN_SPAN * PAGE_SIZE as u64);
        let vpn = va / PAGE_SIZE as u64;
        let line = (va as usize % PAGE_SIZE) / (PAGE_SIZE / LINES_PER_PAGE);
        let page = self.page_ref(p, vpn);
        if page.mapped == Tri::No && !self.st.collapsed {
            self.precise_finding(
                "PA-V002",
                Severity::Warn,
                i,
                format!("poke targets vpn {vpn:#x}, which is never mapped: must fail"),
            );
            return;
        }
        self.functional_write(p, vpn, line);
        self.update_demand();
    }

    /// The machine's functional write routing (`Machine::poke`): a fresh
    /// translate — TLB staleness does not apply — then overlay write iff
    /// `enabled && (in_overlay || (overlay_mode && cow && !writable))`.
    fn functional_write(&mut self, p: usize, vpn: u64, line: usize) {
        let precise = self.precise();
        let overlay_mode = Tri::from_bool(self.config.overlay_mode);
        let page = self.page_mut(p, vpn);
        let in_ov = page.overlay.contains(line);
        let base_is_cow = overlay_mode.and(page.cow).and(!page.writable);
        let route_overlay = page.enabled.and(in_ov.or(base_is_cow));
        let mut cow_copy_possible = false;
        match route_overlay {
            Tri::Yes if precise && page.mapped == Tri::Yes => {
                if in_ov != Tri::Yes {
                    // overlaying_write: the line joins the overlay as a
                    // store-pending (not yet OMS-backed) line.
                    page.overlay.insert_must(line);
                    page.resident.insert_must(line);
                } else {
                    // write_line to an existing overlay line: it may
                    // become pending again.
                    page.resident.insert_may(line);
                }
                page.stale_may |= page.overlay.may;
                page.note_stale_views(page.overlay.may);
            }
            Tri::No if precise && page.mapped == Tri::Yes => {
                // Base route. On a CoW page (plain CoW mode) os.write
                // privatizes the frame — with no TLB shootdown.
                if page.cow == Tri::Yes && page.writable == Tri::No {
                    page.writable = Tri::Yes;
                    page.cow = Tri::No;
                    page.tlb_clean = false;
                    page.dirty_cached_views();
                    cow_copy_possible = true;
                } else if page.cow.possibly() && page.writable != Tri::Yes {
                    page.writable = page.writable.join(Tri::Yes);
                    page.cow = page.cow.join(Tri::No);
                    page.tlb_clean = false;
                    page.dirty_cached_views();
                    cow_copy_possible = true;
                }
            }
            _ => {
                // Either route may be taken (or the interpreter is
                // imprecise): widen both.
                if route_overlay.possibly() {
                    page.overlay.insert_may(line);
                    page.resident.insert_may(line);
                    page.stale_may |= page.overlay.may;
                    page.note_stale_views(page.overlay.may);
                }
                if route_overlay != Tri::Yes && page.cow.possibly() && page.writable != Tri::Yes {
                    page.writable = page.writable.join(Tri::Yes);
                    page.cow = page.cow.join(Tri::No);
                    page.tlb_clean = false;
                    page.dirty_cached_views();
                    cow_copy_possible = true;
                }
            }
        }
        if cow_copy_possible {
            self.note_alloc(1);
        }
    }

    fn op_peek(&mut self, i: usize, sel: u32, raw_va: u64) {
        let Some(p) = self.resolve_or_dead(sel, i, "peek") else { return };
        let va = raw_va % (MAX_VPN_SPAN * PAGE_SIZE as u64);
        let vpn = va / PAGE_SIZE as u64;
        if self.page_ref(p, vpn).mapped == Tri::No && !self.st.collapsed {
            self.precise_finding(
                "PA-V002",
                Severity::Warn,
                i,
                format!("peek targets vpn {vpn:#x}, which is never mapped: reads nothing"),
            );
        }
    }

    fn op_seed(&mut self, i: usize, sel: u32, vpn: u64, line: u8) {
        let Some(p) = self.resolve_or_dead(sel, i, "seed") else { return };
        let vpn = vpn % MAX_VPN_SPAN;
        let line = line as usize % LINES_PER_PAGE;
        let precise = self.precise();
        let page = self.page_mut(p, vpn);
        // The harness seeds only pages whose translation has
        // overlay_enabled, and only lines not already overlaid.
        if page.mapped == Tri::No || page.enabled == Tri::No {
            let reason =
                if page.mapped == Tri::No { "never mapped" } else { "never overlay-enabled" };
            self.precise_finding(
                "PA-V003",
                Severity::Info,
                i,
                format!("seed of vpn {vpn:#x} line {line}: the page is {reason}, the op is dead"),
            );
            return;
        }
        let in_ov = page.overlay.contains(line);
        if in_ov == Tri::Yes {
            self.precise_finding(
                "PA-V003",
                Severity::Info,
                i,
                format!(
                    "seed of vpn {vpn:#x} line {line}: the line is already in the overlay, the \
                     op is dead"
                ),
            );
            return;
        }
        if precise && page.mapped == Tri::Yes && page.enabled == Tri::Yes && in_ov == Tri::No {
            // seed_overlay_line evicts the line to the OMS immediately:
            // it is in the overlay *and* backed (no residency).
            page.overlay.insert_must(line);
        } else {
            page.overlay.insert_may(line);
        }
        page.stale_may |= page.overlay.may;
        page.note_stale_views(page.overlay.may);
        self.update_demand();
    }

    fn op_commit(&mut self, i: usize, sel: u32, vpn: u64) {
        let Some(p) = self.resolve_or_dead(sel, i, "commit") else { return };
        let vpn = vpn % MAX_VPN_SPAN;
        let precise = self.precise();
        let page = self.page_mut(p, vpn);
        match page.overlay.non_empty() {
            Tri::No => {
                self.precise_finding(
                    "PA-V003",
                    Severity::Info,
                    i,
                    format!("commit of vpn {vpn:#x}, which never has an overlay: the op is dead"),
                );
            }
            Tri::Yes if precise && page.mapped == Tri::Yes => {
                // materialize: privatize the frame (writable, not CoW),
                // fold the overlay in, and shoot down the page's TLB
                // entries (commit promotion is symmetric with discard).
                page.overlay = LineSet::EMPTY;
                page.resident = LineSet::EMPTY;
                page.writable = Tri::Yes;
                page.cow = Tri::No;
                page.tlb_clean = true;
                page.stale_may = 0;
                page.reset_views();
                self.note_alloc(1);
            }
            _ => {
                // NoOverlay (no change) or a real commit (privatized).
                page.overlay.weaken();
                page.resident.weaken();
                if page.mapped.possibly() {
                    page.writable = page.writable.join(Tri::Yes);
                    page.cow = page.cow.join(Tri::No);
                    // The shootdown happens only on a real commit, so
                    // cleanliness cannot be reclaimed here.
                    self.note_alloc(1);
                }
            }
        }
    }

    fn op_discard(&mut self, i: usize, sel: u32, vpn: u64) {
        let Some(p) = self.resolve_or_dead(sel, i, "discard") else { return };
        let vpn = vpn % MAX_VPN_SPAN;
        let precise = self.precise();
        let page = self.page_mut(p, vpn);
        match page.overlay.non_empty() {
            Tri::No => {
                self.precise_finding(
                    "PA-V003",
                    Severity::Info,
                    i,
                    format!("discard of vpn {vpn:#x}, which never has an overlay: the op is dead"),
                );
            }
            Tri::Yes if precise => {
                // discard drops the overlay and shoots down the page's
                // TLB entries; PTE flags are untouched.
                page.overlay = LineSet::EMPTY;
                page.resident = LineSet::EMPTY;
                page.tlb_clean = true;
                page.stale_may = 0;
                page.reset_views();
            }
            _ => {
                page.overlay.weaken();
                page.resident.weaken();
                // The shootdown happens only if the overlay existed, so
                // neither cleanliness nor stale bits can be reclaimed.
            }
        }
    }

    fn op_flush(&mut self) {
        // flush_overlays evicts every dirty overlay line into the OMS:
        // nothing stays resident-without-backing (precise or not — a
        // partial flush still only *reduces* residency, so clearing
        // `must` is sound and clearing `may` needs precision).
        let precise = self.precise();
        for page in self.st.pages.values_mut() {
            if precise {
                page.resident = LineSet::EMPTY;
            } else {
                page.resident.weaken();
            }
        }
        self.update_demand();
    }

    fn op_reclaim(&mut self, i: usize) {
        let candidates: Vec<(usize, u64)> =
            self.st.pages.iter().filter(|(_, pg)| pg.overlay.may != 0).map(|(&k, _)| k).collect();
        if candidates.is_empty() {
            if !self.st.collapsed {
                self.precise_finding(
                    "PA-V003",
                    Severity::Info,
                    i,
                    "reclaim with provably no overlay to collapse: the op is dead".to_string(),
                );
            }
            return;
        }
        let precise = self.precise();
        if precise && candidates.len() == 1 {
            let (p, vpn) = candidates[0];
            let page = self.page_mut(p, vpn);
            if page.overlay.must == page.overlay.may && page.mapped == Tri::Yes {
                // The sole candidate is collapsed: privatize + commit +
                // shootdown.
                page.overlay = LineSet::EMPTY;
                page.resident = LineSet::EMPTY;
                page.writable = Tri::Yes;
                page.cow = Tri::No;
                page.tlb_clean = true;
                page.stale_may = 0;
                page.reset_views();
                self.note_alloc(1);
                return;
            }
        }
        // Reclaim stops after the first candidate that frees bytes, in
        // an order the abstraction does not model: every candidate may
        // or may not have been collapsed.
        for (p, vpn) in candidates {
            let page = self.page_mut(p, vpn);
            page.overlay.weaken();
            page.resident.weaken();
            if page.mapped.possibly() {
                page.writable = page.writable.join(Tri::Yes);
                page.cow = page.cow.join(Tri::No);
            }
            self.note_alloc(1);
        }
    }

    /// Timed ops (`Compute`/`Load`/`Store`) run on the first process.
    /// Returns its index, or emits PA-V001 when none exists.
    fn timed_proc(&mut self, i: usize, what: &str) -> Option<usize> {
        if self.st.procs_exact && self.st.procs == 0 {
            self.precise_finding(
                "PA-V001",
                Severity::Warn,
                i,
                format!("timed {what} before any process is spawned: the op is dead"),
            );
            return None;
        }
        self.st.procs_exact.then_some(0)
    }

    /// Cache activity of a timed access may write any dirty overlay
    /// line back to the OMS: residency is no longer guaranteed.
    fn timed_side_effects(&mut self) {
        for page in self.st.pages.values_mut() {
            page.resident.weaken();
        }
    }

    fn op_load(&mut self, i: usize, raw_va: u64) {
        let Some(p) = self.timed_proc(i, "load") else { return };
        let vpn = raw_va / PAGE_SIZE as u64; // timed ops are NOT clamped
        if self.page_ref(p, vpn).mapped == Tri::No && !self.st.collapsed {
            self.precise_finding(
                "PA-V002",
                Severity::Warn,
                i,
                format!("timed load of vpn {vpn:#x}, which is never mapped: must fault"),
            );
            return;
        }
        self.timed_side_effects();
        let core = self.current_core;
        self.page_mut(p, vpn).touch_view(core);
    }

    fn op_store(&mut self, i: usize, raw_va: u64) {
        let Some(p) = self.timed_proc(i, "store") else { return };
        let vpn = raw_va / PAGE_SIZE as u64; // timed ops are NOT clamped
        let line = (raw_va as usize % PAGE_SIZE) / (PAGE_SIZE / LINES_PER_PAGE);
        if self.page_ref(p, vpn).mapped == Tri::No && !self.st.collapsed {
            self.precise_finding(
                "PA-V002",
                Severity::Warn,
                i,
                format!("timed store to vpn {vpn:#x}, which is never mapped: must fault"),
            );
            return;
        }
        self.timed_side_effects();

        let precise = self.precise();
        let overlay_mode = self.config.overlay_mode;
        let threshold = self.config.promote_threshold;
        let core = self.current_core;
        let mut alloc = 0u64;
        let page = self.page_mut(p, vpn);
        // The store routes through exactly this core's TLB image: a
        // clean view (cached-and-agreeing or provably uncached, hence
        // freshly filled) keeps the transfer precise even while another
        // core's entry is stale.
        let view = page.view(core);
        page.touch_view(core);
        let flags_exact = view.clean
            && page.mapped == Tri::Yes
            && page.writable != Tri::Maybe
            && page.cow != Tri::Maybe
            && page.enabled != Tri::Maybe
            && page.overlay.must == page.overlay.may;
        if precise && flags_exact {
            // The TLB image (hit or fresh fill) equals the page table.
            if page.writable == Tri::No {
                // cow must hold (mapped non-writable pages are CoW by
                // construction), else the store would fault hard.
                if overlay_mode && page.enabled == Tri::Yes {
                    if page.overlay.contains(line) != Tri::Yes {
                        // overlaying_write_path: retag into the overlay.
                        page.overlay.insert_must(line);
                        page.resident.insert_must(line);
                        page.stale_may |= page.overlay.may;
                        page.note_stale_views(page.overlay.may);
                        if page.overlay.must_count() >= threshold {
                            // §4.3.4 promotion: commit + privatize +
                            // shootdown, then a fresh refill on the
                            // promoting core.
                            page.overlay = LineSet::EMPTY;
                            page.resident = LineSet::EMPTY;
                            page.writable = Tri::Yes;
                            page.cow = Tri::No;
                            page.tlb_clean = true;
                            page.stale_may = 0;
                            page.reset_views();
                            page.touch_view(core);
                            alloc = 1;
                        }
                    }
                    // A store to a line already in the overlay is a
                    // plain cache write: no structural change.
                } else {
                    // Classic CoW fault: privatize with shootdown/refill.
                    page.writable = Tri::Yes;
                    page.cow = Tri::No;
                    page.tlb_clean = false; // L2 may keep the old entry
                    page.dirty_cached_views();
                    alloc = 1;
                }
            } else if page.enabled.possibly() && page.overlay.contains(line).possibly() {
                // Writable page whose line sits in an overlay: the write
                // lands at the overlay address and is resident again.
                page.resident.insert_may(line);
            }
        } else {
            // Widened store: this core's routing TLB entry may be stale
            // (old flags, old OBitVector), so consider every route at
            // once.
            let maybe_unwritable = !(view.clean && page.writable == Tri::Yes);
            if maybe_unwritable {
                let stale_cow = page.cow.possibly() || !view.clean;
                if overlay_mode && page.enabled.possibly() && stale_cow {
                    page.overlay.insert_may(line);
                    page.resident.insert_may(line);
                    page.stale_may |= page.overlay.may;
                    page.note_stale_views(page.overlay.may);
                    // The promotion threshold applies to the routing
                    // entry's own OBitVector bound, not the all-core
                    // join.
                    if (page.view(core).stale_may.count_ones() as usize) >= threshold {
                        // A promotion through a stale entry is possible.
                        page.overlay.weaken();
                        page.resident.weaken();
                        page.writable = page.writable.join(Tri::Yes);
                        page.cow = page.cow.join(Tri::No);
                        alloc += 1;
                    }
                }
                if stale_cow {
                    // A CoW fault is also possible.
                    page.writable = page.writable.join(Tri::Yes);
                    page.cow = page.cow.join(Tri::No);
                    page.tlb_clean = false;
                    page.dirty_cached_views();
                    alloc += 1;
                }
            }
            if page.enabled.possibly() && page.overlay.contains(line).possibly() {
                page.resident.insert_may(line);
            }
        }
        if alloc > 0 {
            self.note_alloc(alloc);
        }
        self.update_demand();
    }

    // ------------------------------------------------------------------
    // Driver.
    // ------------------------------------------------------------------

    fn run(mut self, ops: &[TraceOp]) -> (Report, AbsState) {
        for (i, op) in ops.iter().enumerate() {
            match *op {
                TraceOp::Spawn => self.op_spawn(i),
                TraceOp::Map { proc_sel, start, count } => self.op_map(i, proc_sel, start, count),
                TraceOp::Fork { proc_sel } => self.op_fork(i, proc_sel),
                TraceOp::Poke { proc_sel, va, .. } => self.op_poke(i, proc_sel, va.raw()),
                TraceOp::Peek { proc_sel, va } => self.op_peek(i, proc_sel, va.raw()),
                TraceOp::SeedLine { proc_sel, vpn, line, .. } => {
                    self.op_seed(i, proc_sel, vpn, line)
                }
                TraceOp::CommitPage { proc_sel, vpn } => self.op_commit(i, proc_sel, vpn),
                TraceOp::DiscardPage { proc_sel, vpn } => self.op_discard(i, proc_sel, vpn),
                TraceOp::Flush => self.op_flush(),
                TraceOp::Reclaim => self.op_reclaim(i),
                // Compaction relocates OMS segments in place: no PTE
                // flag, overlay set, or residency the abstraction
                // tracks changes, and peak demand only shrinks.
                TraceOp::Compact => {}
                // Core affinity routes subsequent timed ops to one
                // core's TLB image, resolved modulo the configured
                // count exactly as the harness does.
                TraceOp::OnCore { core_sel } => {
                    if core_sel as usize >= self.cores {
                        self.finding(
                            "PA-V007",
                            Severity::Warn,
                            i,
                            format!(
                                "OnCore selects core {core_sel}, but the machine is configured \
                                 with {} core(s): the harness wraps it to core {}",
                                self.cores,
                                core_sel as usize % self.cores
                            ),
                        );
                    }
                    self.current_core = core_sel as usize % self.cores;
                }
                TraceOp::Compute(_) => {
                    let _ = self.timed_proc(i, "compute");
                }
                TraceOp::Load(va) => self.op_load(i, va.raw()),
                TraceOp::Store(va) => self.op_store(i, va.raw()),
            }
            debug_assert!(
                self.st.pages.values().all(AbsPage::well_formed),
                "abstract state ill-formed after op {i} ({op:?})"
            );
        }

        // PA-V004: crash-point reachability. run_crash_convergence polls
        // the crash site exactly once per op, so a 0-based query index
        // ≥ ops.len() can never fire.
        let polls = ops.len() as u64;
        for &q in &self.opts.crash_queries {
            if q >= polls {
                self.finding(
                    "PA-V004",
                    Severity::Warn,
                    // Whole-trace finding: anchor at op 0.
                    usize::MAX,
                    format!(
                        "crash point scheduled at query {q} can never fire: the trace polls the \
                         crash site only {polls} times (once per op)"
                    ),
                );
            }
        }

        // PA-V005: possible OMS overflow against a configured budget,
        // with optional fragmentation headroom on top of the raw peak.
        if let Some(limit) = self.opts.oms_limit {
            let padded =
                (self.st.peak_oms_demand as f64 * (1.0 + self.opts.frag_slack)).ceil() as u64;
            if padded > limit {
                let msg = if self.opts.frag_slack > 0.0 {
                    format!(
                        "lazy overlay allocation can demand {} bytes of OMS segments at its \
                         peak — {padded} bytes with the {:.0}% fragmentation slack — \
                         exceeding the {limit}-byte budget",
                        self.st.peak_oms_demand,
                        self.opts.frag_slack * 100.0
                    )
                } else {
                    format!(
                        "lazy overlay allocation can demand {} bytes of OMS segments at its \
                         peak, exceeding the {limit}-byte budget",
                        self.st.peak_oms_demand
                    )
                };
                self.finding("PA-V005", Severity::Warn, usize::MAX, msg);
            }
        }

        // PA-V006: lines the trace provably leaves resident with no OMS
        // backing slot (the bug shape PR 2's fuzzer caught dynamically).
        if !self.st.collapsed {
            let tails: Vec<(usize, u64, u32)> = self
                .st
                .pages
                .iter()
                .filter(|(_, pg)| pg.resident.must != 0)
                .map(|(&(p, vpn), pg)| (p, vpn, pg.resident.must.count_ones()))
                .collect();
            for (p, vpn, n) in tails {
                self.precise_finding(
                    "PA-V006",
                    Severity::Info,
                    usize::MAX,
                    format!(
                        "trace ends with {n} overlay line(s) of process {p} vpn {vpn:#x} \
                         resident without a guaranteed OMS backing slot; a final flush (U) \
                         would settle them"
                    ),
                );
            }
        }

        self.report.sort();
        (self.report, self.st)
    }
}

/// Symbolically executes `ops` under `config`, returning the findings
/// and the final abstract state. Findings use `subject` as the file
/// name and the 1-based op ordinal as the line (0 = whole-trace).
#[must_use]
pub fn verify_ops(
    config: &SystemConfig,
    ops: &[TraceOp],
    opts: &VerifierOptions,
    subject: &str,
) -> (Report, AbsState) {
    Interp::new(config, opts, subject).run(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::VirtAddr;

    fn overlay_cfg() -> SystemConfig {
        SystemConfig::table2_overlay()
    }

    fn rules(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_trace_has_no_findings() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 4 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_040), value: 7 },
            TraceOp::Peek { proc_sel: 0, va: VirtAddr::new(0x100_040) },
            TraceOp::Flush,
        ];
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        assert_eq!(st.procs, 2);
        assert!(st.procs_exact && !st.degraded);
    }

    #[test]
    fn op_before_spawn_is_dead() {
        let ops = vec![TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 }, TraceOp::Spawn];
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        assert_eq!(rules(&report), vec!["PA-V001"]);
    }

    #[test]
    fn poke_on_unmapped_page_must_fail() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x999_000), value: 1 },
        ];
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        assert_eq!(rules(&report), vec!["PA-V002"]);
    }

    #[test]
    fn overlay_tracking_through_fork_and_poke() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_080), value: 1 },
        ];
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        // The trace ends with the poked line still resident: exactly
        // the PA-V006 informational tail, nothing else.
        assert_eq!(rules(&report), vec!["PA-V006"], "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        // Fork shared the page CoW + overlay-enabled; the poke then
        // overlays exactly line 2 (offset 0x80).
        assert_eq!(page.overlay.must, 1 << 2);
        assert_eq!(page.overlay.may, 1 << 2);
        assert_eq!(page.resident.must, 1 << 2);
        assert_eq!(page.cow, Tri::Yes);
        assert_eq!(page.enabled, Tri::Yes);
        // The child shares the frame but has no overlay of its own.
        assert_eq!(st.pages[&(1, 0x100)].overlay.may, 0);
    }

    #[test]
    fn commit_without_overlay_is_dead_and_with_overlay_privatizes() {
        let dead = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::CommitPage { proc_sel: 0, vpn: 0x100 },
        ];
        let (report, _) = verify_ops(&overlay_cfg(), &dead, &VerifierOptions::default(), "<t>");
        assert_eq!(rules(&report), vec!["PA-V003"]);

        let live = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
            TraceOp::CommitPage { proc_sel: 0, vpn: 0x100 },
        ];
        let (report, st) = verify_ops(&overlay_cfg(), &live, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        assert_eq!(page.overlay.may, 0);
        assert_eq!(page.writable, Tri::Yes);
        // commit promotion shoots down the page's TLB entries.
        assert!(page.tlb_clean);
    }

    #[test]
    fn commit_shootdown_keeps_timed_stores_precise() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
            TraceOp::CommitPage { proc_sel: 0, vpn: 0x100 },
            // The shootdown forces a TLB refill: the store sees the
            // private writable page exactly and stays a plain write.
            TraceOp::Store(VirtAddr::new(0x100_040)),
        ];
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        assert_eq!(page.overlay.may, 0, "no stale route can re-create the overlay");
        assert!(page.tlb_clean);
    }

    #[test]
    fn stale_cow_privatization_widens_timed_stores() {
        // The OS CoW path (a functional poke routed to `os.write`) still
        // privatizes without a shootdown: in plain CoW mode a later
        // timed store may take either the stale CoW route or the plain
        // write, so the flags stay widened but no overlay appears.
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
            TraceOp::Store(VirtAddr::new(0x100_040)),
        ];
        let (report, st) =
            verify_ops(&SystemConfig::table2(), &ops, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        assert!(!page.tlb_clean, "the CoW privatization left stale TLB entries");
        assert_eq!(page.overlay.may, 0, "no overlays in plain CoW mode");
        assert_eq!(page.writable, Tri::Yes);
    }

    #[test]
    fn discard_restores_tlb_cleanliness() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
            TraceOp::DiscardPage { proc_sel: 0, vpn: 0x100 },
            TraceOp::Store(VirtAddr::new(0x100_040)),
        ];
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        // The overlaying store leaves its line resident at trace end.
        assert_eq!(rules(&report), vec!["PA-V006"], "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        // After the discard shootdown the store's TLB image is exact:
        // the page is still shared CoW, so the store overlays line 1.
        assert_eq!(page.overlay.must, 1 << 1);
        assert_eq!(page.overlay.may, 1 << 1);
    }

    #[test]
    fn unreachable_crash_point_reported() {
        let ops = vec![TraceOp::Spawn, TraceOp::Flush];
        let opts = VerifierOptions { crash_queries: vec![1, 2, 100], ..Default::default() };
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &opts, "<t>");
        // Queries 2 and 100 are past the 2 polls this trace performs.
        assert_eq!(rules(&report), vec!["PA-V004", "PA-V004"]);
    }

    #[test]
    fn oms_budget_overflow_reported() {
        let mut ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 2 },
            TraceOp::Fork { proc_sel: 0 },
        ];
        // 4 seeded lines per page → each page needs a 512 B segment.
        for vpn in [0x100u64, 0x101] {
            for line in 0..4u8 {
                ops.push(TraceOp::SeedLine { proc_sel: 0, vpn, line, value: 1 });
            }
        }
        let tight = VerifierOptions { oms_limit: Some(768), ..Default::default() };
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &tight, "<t>");
        assert_eq!(st.peak_oms_demand, 1024);
        assert_eq!(rules(&report), vec!["PA-V005"]);
        let roomy = VerifierOptions { oms_limit: Some(1024), ..Default::default() };
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &roomy, "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());

        // Fragmentation slack pads the peak: a budget that covers the
        // raw 1024-byte peak but not 1024 × 1.5 fires the same rule.
        let slack =
            VerifierOptions { oms_limit: Some(1280), frag_slack: 0.5, ..Default::default() };
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &slack, "<t>");
        assert_eq!(rules(&report), vec!["PA-V005"]);
        assert!(report.findings[0].message.contains("1536 bytes with the 50%"));
        let no_slack = VerifierOptions { oms_limit: Some(1280), ..Default::default() };
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &no_slack, "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
    }

    #[test]
    fn resident_tail_reported_and_settled_by_flush() {
        let base = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
        ];
        let (report, _) = verify_ops(&overlay_cfg(), &base, &VerifierOptions::default(), "<t>");
        assert_eq!(rules(&report), vec!["PA-V006"]);

        let mut flushed = base;
        flushed.push(TraceOp::Flush);
        let (report, _) = verify_ops(&overlay_cfg(), &flushed, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
    }

    #[test]
    fn cow_mode_never_builds_overlays() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
            TraceOp::Store(VirtAddr::new(0x100_040)),
        ];
        let (report, st) =
            verify_ops(&SystemConfig::table2(), &ops, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        assert!(st.pages.values().all(|pg| pg.overlay.may == 0));
        // The poke privatized the page through the classic CoW path.
        assert_eq!(st.pages[&(0, 0x100)].writable, Tri::Yes);
    }

    #[test]
    fn assume_faults_suppresses_must_claims() {
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x999_000), value: 1 },
        ];
        let opts = VerifierOptions { assume_faults: true, ..Default::default() };
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &opts, "<t>");
        assert!(report.findings.is_empty(), "faulty replays make nothing certain");
        assert!(st.degraded);
    }

    #[test]
    fn oncore_past_core_count_is_v007() {
        let mut cfg = overlay_cfg();
        cfg.cores = 2;
        let ops = vec![
            TraceOp::Spawn,
            TraceOp::OnCore { core_sel: 1 },
            TraceOp::OnCore { core_sel: 5 },
            TraceOp::OnCore { core_sel: 2 },
        ];
        let (report, _) = verify_ops(&cfg, &ops, &VerifierOptions::default(), "<t>");
        assert_eq!(rules(&report), vec!["PA-V007", "PA-V007"], "{}", report.to_human());
        assert!(report.findings[0].message.contains("wraps it to core 1"));

        // On the single-core default every selector wraps to core 0 —
        // still reported: the trace asks for cores the machine lacks.
        let ops = vec![TraceOp::Spawn, TraceOp::OnCore { core_sel: 1 }];
        let (report, _) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        assert_eq!(rules(&report), vec!["PA-V007"]);
    }

    #[test]
    fn per_core_views_keep_remote_cores_precise() {
        // Core 0 caches the page's entry, then a functional CoW
        // privatization leaves core 0's entry stale. A store issued on
        // core 1 — which provably holds no entry — refills fresh and
        // stays precise; the same store on core 0 must widen.
        let mut cfg = SystemConfig::table2();
        cfg.cores = 2;
        let prefix = vec![
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: 0, start: 0x100, count: 1 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Load(VirtAddr::new(0x100_000)), // core 0 caches the entry
            TraceOp::Poke { proc_sel: 0, va: VirtAddr::new(0x100_000), value: 1 },
        ];

        let mut on_remote = prefix.clone();
        on_remote.push(TraceOp::OnCore { core_sel: 1 });
        on_remote.push(TraceOp::Store(VirtAddr::new(0x100_040)));
        let (report, st) = verify_ops(&cfg, &on_remote, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        assert!(!page.tlb_clean, "the privatization left core 0's entry stale");
        assert!(!page.view(0).clean);
        assert_eq!(page.writable, Tri::Yes, "core 1's fresh fill sees the private page exactly");

        let mut on_stale = prefix;
        on_stale.push(TraceOp::Store(VirtAddr::new(0x100_040)));
        let (report, st) = verify_ops(&cfg, &on_stale, &VerifierOptions::default(), "<t>");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        let page = &st.pages[&(0, 0x100)];
        assert!(!page.view(0).clean, "core 0's routing entry may still be the CoW image");
    }

    #[test]
    fn asid_exhaustion_makes_spawns_dead() {
        let mut ops = vec![TraceOp::Spawn; PROC_CAP + 3];
        ops.push(TraceOp::Fork { proc_sel: 0 });
        let (report, st) = verify_ops(&overlay_cfg(), &ops, &VerifierOptions::default(), "<t>");
        assert_eq!(st.procs, PROC_CAP);
        // 3 dead spawns + 1 dead fork.
        assert_eq!(rules(&report), vec!["PA-V001"; 4]);
    }
}
