//! Parser for the coherence annotation stream.
//!
//! The multi-core machine exports its telemetry journal as JSONL with a
//! fixed key order (`crates/telemetry/src/journal.rs`). The concurrency
//! verifier consumes only the `Coh*` kinds; every other event kind is
//! skipped. The parser is deliberately self-contained (no serde — the
//! registry is offline) and lenient about unknown kinds but strict
//! about the shape of the coherence events themselves: a malformed
//! `Coh*` line is a PA-C000 error, the analog of the trace verifier's
//! PA-V000.

use crate::findings::{Finding, Report, Severity};

/// One coherence event, decoded from a journal JSONL line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CohEvent {
    /// `CohReadExclusive`: a core acquired overlaying-read-exclusive
    /// rights on a line before an overlaying write (§4.3.3 step 1).
    ReadExclusive {
        /// Acquiring core.
        core: u32,
        /// Overlay page number.
        opn: u64,
        /// Line index within the page.
        line: u8,
    },
    /// `CohObitUpdate`: a single-line OBitVector-update message
    /// delivered to a remote TLB copy (§4.3.3 step 2).
    ObitUpdate {
        /// Writing (sending) core.
        src: u32,
        /// Remote receiving core.
        dest: u32,
        /// Overlay page number.
        opn: u64,
        /// Line index within the page.
        line: u8,
    },
    /// `CohPromote`: a promotion reached its commit point (§4.3.4).
    Promote {
        /// Promoting core.
        core: u32,
        /// Overlay page number.
        opn: u64,
    },
    /// `CohShootdownBegin`: a TLB-shootdown window opened.
    ShootdownBegin {
        /// Initiating core.
        core: u32,
        /// Overlay page number.
        opn: u64,
    },
    /// `CohShootdownAck`: one remote core acknowledged the shootdown.
    ShootdownAck {
        /// Initiating core.
        core: u32,
        /// Acknowledging core.
        from: u32,
        /// Overlay page number.
        opn: u64,
    },
    /// `CohShootdownEnd`: the shootdown window closed.
    ShootdownEnd {
        /// Initiating core.
        core: u32,
        /// Overlay page number.
        opn: u64,
    },
    /// `CohAccess`: a timed access to an overlay-enabled page.
    Access {
        /// Issuing core.
        core: u32,
        /// Overlay page number.
        opn: u64,
        /// Line index within the page.
        line: u8,
        /// `true` for stores.
        write: bool,
    },
    /// `CohFill`: a TLB miss refilled a core's entry from the page
    /// tables / OMT (the refilled view is fresh).
    Fill {
        /// Refilled core.
        core: u32,
        /// Overlay page number.
        opn: u64,
    },
}

/// A decoded coherence event with its journal stamps and the 1-based
/// line it came from (the finding anchor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CohRecord {
    /// Journal sequence number.
    pub seq: u64,
    /// Simulated cycle stamp.
    pub cycle: u64,
    /// 1-based line number in the JSONL document.
    pub line_no: usize,
    /// The event.
    pub event: CohEvent,
}

/// Extracts the integer value of `"name":<digits>` from a JSONL line.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = line.find(&key)? + key.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts the boolean value of `"name":true|false`.
fn field_bool(line: &str, name: &str) -> Option<bool> {
    let key = format!("\"{name}\":");
    let at = line.find(&key)? + key.len();
    let rest = &line[at..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts the string value of `"kind":"..."`.
fn field_kind(line: &str) -> Option<&str> {
    let key = "\"kind\":\"";
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

fn field_u32(line: &str, name: &str) -> Option<u32> {
    field_u64(line, name).and_then(|v| u32::try_from(v).ok())
}

fn field_u8(line: &str, name: &str) -> Option<u8> {
    field_u64(line, name).and_then(|v| u8::try_from(v).ok())
}

fn decode_event(kind: &str, line: &str) -> Option<Option<CohEvent>> {
    // Outer None: not a coherence kind. Inner None: malformed fields.
    let ev = match kind {
        "CohReadExclusive" => CohEvent::ReadExclusive {
            core: field_u32(line, "core")?,
            opn: field_u64(line, "opn")?,
            line: field_u8(line, "line")?,
        },
        "CohObitUpdate" => CohEvent::ObitUpdate {
            src: field_u32(line, "src")?,
            dest: field_u32(line, "dest")?,
            opn: field_u64(line, "opn")?,
            line: field_u8(line, "line")?,
        },
        "CohPromote" => {
            CohEvent::Promote { core: field_u32(line, "core")?, opn: field_u64(line, "opn")? }
        }
        "CohShootdownBegin" => CohEvent::ShootdownBegin {
            core: field_u32(line, "core")?,
            opn: field_u64(line, "opn")?,
        },
        "CohShootdownAck" => CohEvent::ShootdownAck {
            core: field_u32(line, "core")?,
            from: field_u32(line, "from")?,
            opn: field_u64(line, "opn")?,
        },
        "CohShootdownEnd" => {
            CohEvent::ShootdownEnd { core: field_u32(line, "core")?, opn: field_u64(line, "opn")? }
        }
        "CohAccess" => CohEvent::Access {
            core: field_u32(line, "core")?,
            opn: field_u64(line, "opn")?,
            line: field_u8(line, "line")?,
            write: field_bool(line, "write")?,
        },
        "CohFill" => {
            CohEvent::Fill { core: field_u32(line, "core")?, opn: field_u64(line, "opn")? }
        }
        _ => return None,
    };
    Some(Some(ev))
}

// Wrapping decode_event in the double Option above keeps the `?` sugar
// while distinguishing "skip" from "malformed"; the wrapper below
// flattens it for callers.
fn decode(kind: &str, line: &str) -> DecodeOutcome {
    match kind {
        "CohReadExclusive" | "CohObitUpdate" | "CohPromote" | "CohShootdownBegin"
        | "CohShootdownAck" | "CohShootdownEnd" | "CohAccess" | "CohFill" => {
            match decode_event(kind, line) {
                Some(Some(ev)) => DecodeOutcome::Event(ev),
                _ => DecodeOutcome::Malformed,
            }
        }
        _ => DecodeOutcome::Skip,
    }
}

enum DecodeOutcome {
    Event(CohEvent),
    Skip,
    Malformed,
}

/// Parses a journal JSONL export, returning the coherence records plus
/// a report holding one PA-C000 error per malformed coherence line.
/// Non-coherence kinds and blank lines are skipped silently.
#[must_use]
pub fn parse_jsonl(text: &str, subject: &str) -> (Vec<CohRecord>, Report) {
    let mut records = Vec::new();
    let mut report = Report::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let Some(kind) = field_kind(line) else {
            report.push(Finding::new(
                "PA-C000",
                Severity::Error,
                subject,
                line_no,
                "event line has no \"kind\" field".to_string(),
            ));
            continue;
        };
        match decode(kind, line) {
            DecodeOutcome::Event(event) => records.push(CohRecord {
                seq: field_u64(line, "seq").unwrap_or(line_no as u64),
                cycle: field_u64(line, "cycle").unwrap_or(0),
                line_no,
                event,
            }),
            DecodeOutcome::Skip => {}
            DecodeOutcome::Malformed => report.push(Finding::new(
                "PA-C000",
                Severity::Error,
                subject,
                line_no,
                format!("malformed {kind} event: missing or out-of-range field"),
            )),
        }
    }
    (records, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_coherence_kinds_and_skips_the_rest() {
        let text = "\
{\"seq\":0,\"cycle\":5,\"kind\":\"TlbLookup\",\"asid\":1,\"vpn\":2,\"level\":\"L1\",\"latency\":1}\n\
{\"seq\":1,\"cycle\":6,\"kind\":\"CohReadExclusive\",\"core\":0,\"opn\":9,\"line\":3}\n\
{\"seq\":2,\"cycle\":7,\"kind\":\"CohObitUpdate\",\"src\":0,\"dest\":1,\"opn\":9,\"line\":3}\n\
{\"seq\":3,\"cycle\":8,\"kind\":\"CohAccess\",\"core\":1,\"opn\":9,\"line\":3,\"write\":false}\n";
        let (records, report) = parse_jsonl(text, "t");
        assert!(report.findings.is_empty(), "{}", report.to_human());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].event, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 });
        assert_eq!(records[1].event, CohEvent::ObitUpdate { src: 0, dest: 1, opn: 9, line: 3 });
        assert_eq!(records[2].event, CohEvent::Access { core: 1, opn: 9, line: 3, write: false });
        assert_eq!(records[2].line_no, 4);
    }

    #[test]
    fn malformed_coherence_line_is_c000() {
        let (records, report) =
            parse_jsonl("{\"seq\":1,\"cycle\":0,\"kind\":\"CohFill\",\"core\":0}\n", "t");
        assert!(records.is_empty());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "PA-C000");
        assert_eq!(report.findings[0].severity, Severity::Error);
    }

    #[test]
    fn out_of_range_line_index_is_c000() {
        let (records, report) = parse_jsonl(
            "{\"seq\":1,\"cycle\":0,\"kind\":\"CohAccess\",\"core\":0,\"opn\":1,\"line\":300,\"write\":true}\n",
            "t",
        );
        assert!(records.is_empty());
        assert_eq!(report.findings[0].rule, "PA-C000");
    }

    #[test]
    fn kindless_line_is_c000() {
        let (_, report) = parse_jsonl("{\"seq\":1}\n", "t");
        assert_eq!(report.findings[0].rule, "PA-C000");
    }
}
