//! Front 3: the happens-before concurrency verifier (PA-C family).
//!
//! Replays the multi-core machine's coherence annotation stream
//! (`Coh*` telemetry events, see `crates/telemetry/src/journal.rs`)
//! with one vector clock per core, modeling the §4.3.3/§4.3.4 coherence
//! messages and shootdowns as the *only* synchronization edges:
//!
//! * program order — a core's clock ticks at each of its accesses;
//! * `CohObitUpdate` — the message carries the writer's clock into the
//!   receiver's TLB-entry view;
//! * `CohFill` — a TLB refill reads the coherent page tables / OMT, so
//!   the entry view acquires the page's publication clock;
//! * `CohReadExclusive` / `CohShootdownEnd` — publish the acting core's
//!   clock to the page clock future fills acquire;
//! * `CohShootdownAck` — the initiator joins each acker's clock before
//!   the end is published.
//!
//! A conflicting pair left unordered by these edges is a stream a
//! correct machine cannot produce — exactly the bug class the paper's
//! coherence argument (§4.3.3) rules out, and the one the seeded race
//! canary ([`po_sim::Machine::set_inject_obit_race`]) plants.
//!
//! # Rule catalog
//!
//! | Rule    | Severity | Meaning |
//! |---------|----------|---------|
//! | PA-C000 | error    | the event stream does not parse (malformed `Coh*` line) |
//! | PA-C001 | warn     | data race: an access rides a TLB view that never observed the line's overlaying write |
//! | PA-C002 | warn     | OBitVector-update message not covered by a read-exclusive acquisition |
//! | PA-C003 | warn     | promotion visible on a remote core before its shootdown completed |
//! | PA-C004 | warn     | two happens-before-unordered update messages to the same line (one delivery can be lost) |
//! | PA-C005 | warn     | stale-TLB access inside a shootdown window before the core acknowledged |
//! | PA-C006 | warn     | coherence-message ordering violates the per-line protocol state machine |

use super::coh_events::{parse_jsonl, CohEvent, CohRecord};
use super::protocol::{LineProtocol, ShootdownWindow};
use super::vclock::VClock;
use crate::findings::{Finding, Report, Severity};
use po_sim::{SimHarness, SystemConfig, TraceOp};
use po_telemetry::TelemetrySink;
use std::collections::{BTreeMap, BTreeSet};

/// A line-creation record: the writer's clock at its
/// `CohReadExclusive`, plus provenance for the finding message.
#[derive(Clone, Debug)]
struct Creation {
    clock: VClock,
    core: u32,
    seq: u64,
}

/// The last update message sent for a line (PA-C004 ordering check).
#[derive(Clone, Debug)]
struct LastUpdate {
    clock: VClock,
    src: u32,
    seq: u64,
}

/// The happens-before replay state.
#[derive(Debug, Default)]
struct Analyzer {
    /// Per-core vector clocks (grow on demand).
    clocks: Vec<VClock>,
    /// Per-page publication clock: joined by read-exclusive
    /// acquisitions and completed shootdowns; acquired by TLB fills.
    page_clock: BTreeMap<u64, VClock>,
    /// Per-(core, page) TLB-entry view: the clock the core's cached
    /// entry has observed, via its fill and delivered update messages.
    entry_view: BTreeMap<(u32, u64), VClock>,
    /// Last creation (overlaying write) per (opn, line).
    creation: BTreeMap<(u64, u8), Creation>,
    /// Last update message per (opn, line).
    last_update: BTreeMap<(u64, u8), LastUpdate>,
    /// The per-line MSI-style protocol states.
    protocol: LineProtocol,
    /// Open shootdown windows by page.
    windows: BTreeMap<u64, ShootdownWindow>,
    /// Pages whose `CohPromote` has fired but whose shootdown window
    /// has not opened yet.
    pending_promote: BTreeSet<u64>,
}

impl Analyzer {
    fn clock_mut(&mut self, core: u32) -> &mut VClock {
        let idx = core as usize;
        if self.clocks.len() <= idx {
            self.clocks.resize(idx + 1, VClock::new());
        }
        &mut self.clocks[idx]
    }

    fn clock(&self, core: u32) -> VClock {
        self.clocks.get(core as usize).cloned().unwrap_or_default()
    }

    fn step(&mut self, r: &CohRecord, subject: &str, report: &mut Report) {
        let warn = |report: &mut Report, rule: &'static str, msg: String| {
            report.push(Finding::new(rule, Severity::Warn, subject, r.line_no, msg));
        };
        match r.event {
            CohEvent::Access { core, opn, line, write } => {
                self.clock_mut(core).tick(core as usize);
                // Shootdown-window visibility rules.
                if let Some(w) = self.windows.get(&opn) {
                    if core != w.initiator {
                        if !w.acked.contains(&core) {
                            warn(
                                report,
                                "PA-C005",
                                format!(
                                    "core {core} accessed opn {opn} line {line} through a stale \
                                     TLB entry inside the shootdown window opened by core {} \
                                     (no ack from core {core} yet)",
                                    w.initiator
                                ),
                            );
                        } else if w.promote {
                            warn(
                                report,
                                "PA-C003",
                                format!(
                                    "core {core} observed the promotion of opn {opn} (access to \
                                     line {line}) before core {}'s shootdown completed",
                                    w.initiator
                                ),
                            );
                        }
                    }
                }
                // Data-race rule: the access must ride a TLB view that
                // has observed the line's creating overlaying write.
                if let Some(c) = self.creation.get(&(opn, line)) {
                    if c.core != core {
                        let view = match self.entry_view.get(&(core, opn)) {
                            Some(v) => v.clone(),
                            None => {
                                // No recorded fill for this entry: adopt
                                // the core's own clock (lenient — an
                                // entry the verifier never saw filled is
                                // not evidence of a race).
                                let v = self.clock(core);
                                self.entry_view.insert((core, opn), v.clone());
                                v
                            }
                        };
                        if !c.clock.le(&view) {
                            let kind = if write { "store" } else { "load" };
                            warn(
                                report,
                                "PA-C001",
                                format!(
                                    "data race: core {core} {kind} to opn {opn} line {line} rides \
                                     a TLB view that never observed core {}'s overlaying write \
                                     (event seq {}) — the update message was lost or never sent",
                                    c.core, c.seq
                                ),
                            );
                        }
                    }
                }
            }
            CohEvent::Fill { core, opn } => {
                if let Some(pc) = self.page_clock.get(&opn).cloned() {
                    self.clock_mut(core).join(&pc);
                }
                let view = self.clock(core);
                self.entry_view.insert((core, opn), view);
            }
            CohEvent::ReadExclusive { core, opn, line } => {
                // Re-acquisition is legal (a refilled entry re-runs the
                // §4.3.3 path); acquiring while the page is mid-
                // shootdown is a message order no correct machine
                // produces.
                if self.windows.contains_key(&opn) {
                    warn(
                        report,
                        "PA-C006",
                        format!(
                            "core {core} acquired read-exclusive on opn {opn} line {line} inside \
                             the page's open shootdown window"
                        ),
                    );
                }
                self.protocol.acquire_exclusive(opn, line, core);
                let clock = self.clock(core);
                self.creation
                    .insert((opn, line), Creation { clock: clock.clone(), core, seq: r.seq });
                self.page_clock.entry(opn).or_default().join(&clock);
                self.entry_view.entry((core, opn)).or_default().join(&clock);
            }
            CohEvent::ObitUpdate { src, dest, opn, line } => {
                if src == dest {
                    warn(
                        report,
                        "PA-C006",
                        format!(
                            "self-directed OBitVector-update message on core {src} for opn {opn} \
                             line {line}"
                        ),
                    );
                }
                if self.protocol.owner(opn, line) != Some(src) {
                    warn(
                        report,
                        "PA-C002",
                        format!(
                            "OBitVector update for opn {opn} line {line} sent by core {src} \
                             without a covering read-exclusive acquisition"
                        ),
                    );
                }
                let msg_clock = self.clock(src);
                if let Some(prev) = self.last_update.get(&(opn, line)) {
                    if !prev.clock.le(&msg_clock) {
                        warn(
                            report,
                            "PA-C004",
                            format!(
                                "unordered OBitVector updates to opn {opn} line {line}: core \
                                 {src}'s message (seq {}) is not ordered after core {}'s (seq \
                                 {}) — one delivery can be lost",
                                r.seq, prev.src, prev.seq
                            ),
                        );
                    }
                }
                self.last_update
                    .insert((opn, line), LastUpdate { clock: msg_clock.clone(), src, seq: r.seq });
                self.entry_view.entry((dest, opn)).or_default().join(&msg_clock);
            }
            CohEvent::Promote { opn, .. } => {
                self.pending_promote.insert(opn);
            }
            CohEvent::ShootdownBegin { core, opn } => {
                let promote = self.pending_promote.remove(&opn);
                if self.windows.contains_key(&opn) {
                    warn(
                        report,
                        "PA-C006",
                        format!(
                            "core {core} opened a shootdown window for opn {opn} while another \
                             window for the same page is still open"
                        ),
                    );
                }
                self.windows.insert(
                    opn,
                    ShootdownWindow {
                        initiator: core,
                        acked: BTreeSet::new(),
                        promote,
                        opened_at: r.line_no,
                    },
                );
            }
            CohEvent::ShootdownAck { core, from, opn } => {
                let valid = match self.windows.get_mut(&opn) {
                    None => {
                        warn(
                            report,
                            "PA-C006",
                            format!(
                                "shootdown ack from core {from} for opn {opn} with no open window"
                            ),
                        );
                        false
                    }
                    Some(w) if w.initiator != core => {
                        warn(
                            report,
                            "PA-C006",
                            format!(
                                "shootdown ack for opn {opn} names initiator {core} but the open \
                                 window was begun by core {}",
                                w.initiator
                            ),
                        );
                        false
                    }
                    Some(w) => {
                        if from == core {
                            warn(
                                report,
                                "PA-C006",
                                format!(
                                    "initiator core {core} acknowledged its own shootdown of opn \
                                     {opn}"
                                ),
                            );
                            false
                        } else if !w.acked.insert(from) {
                            warn(
                                report,
                                "PA-C006",
                                format!("duplicate shootdown ack from core {from} for opn {opn}"),
                            );
                            false
                        } else {
                            true
                        }
                    }
                };
                if valid {
                    let acker = self.clock(from);
                    self.clock_mut(core).join(&acker);
                }
            }
            CohEvent::ShootdownEnd { core, opn } => {
                match self.windows.remove(&opn) {
                    None => warn(
                        report,
                        "PA-C006",
                        format!("shootdown end for opn {opn} with no open window"),
                    ),
                    Some(w) if w.initiator != core => warn(
                        report,
                        "PA-C006",
                        format!(
                            "shootdown end for opn {opn} names initiator {core} but the window \
                             was begun by core {}",
                            w.initiator
                        ),
                    ),
                    Some(_) => {}
                }
                let clock = self.clock(core);
                self.page_clock.entry(opn).or_default().join(&clock);
                // Every cached translation of the page is gone: the
                // next access on any core must go through a fill.
                self.entry_view.retain(|&(_, o), _| o != opn);
                self.protocol.reset_page(opn);
            }
        }
    }

    fn finish(&mut self, subject: &str, report: &mut Report) {
        for (opn, w) in &self.windows {
            report.push(Finding::new(
                "PA-C006",
                Severity::Warn,
                subject,
                w.opened_at,
                format!(
                    "shootdown window for opn {opn} opened by core {} never closed",
                    w.initiator
                ),
            ));
        }
    }
}

/// Replays decoded coherence records through the happens-before
/// analysis and returns the (sorted) findings.
#[must_use]
pub fn analyze_records(records: &[CohRecord], subject: &str) -> Report {
    let mut a = Analyzer::default();
    let mut report = Report::new();
    for r in records {
        a.step(r, subject, &mut report);
    }
    a.finish(subject, &mut report);
    report.sort();
    report
}

/// Parses a journal JSONL export and analyzes its coherence stream.
/// Malformed coherence lines yield PA-C000 errors; the remaining
/// records are still analyzed.
#[must_use]
pub fn analyze_jsonl(text: &str, subject: &str) -> Report {
    let (records, mut report) = parse_jsonl(text, subject);
    report.extend(analyze_records(&records, subject));
    report.sort();
    report
}

/// Replays `ops` through a fresh [`SimHarness`] with a never-evicting
/// telemetry journal installed and returns the journal's JSONL export —
/// the concurrency verifier's input. With `arm_race_canary` the
/// machine's one-shot OBitVector-update race is armed first (the
/// positive control: the functional state stays correct, only the
/// annotation is lost, so nothing but this verifier can see it).
///
/// # Errors
///
/// The harness's own divergence / refinement / invariant errors — a
/// trace that fails to replay is not analyzable.
pub fn replay_events_jsonl(
    config: &SystemConfig,
    ops: &[TraceOp],
    arm_race_canary: bool,
) -> Result<String, String> {
    let mut h = SimHarness::new(config.clone())
        .map_err(|e| format!("machine construction failed: {e:?}"))?;
    // Capacity usize::MAX keeps the ring from ever evicting, so the
    // JSONL export holds the complete event stream.
    h.machine.install_telemetry(TelemetrySink::with_capacity(usize::MAX, 0));
    if arm_race_canary {
        h.machine.set_inject_obit_race(true);
    }
    for (i, op) in ops.iter().enumerate() {
        h.apply(op).map_err(|e| format!("op {i} failed during replay: {e}"))?;
    }
    Ok(h.machine.telemetry().journal_jsonl())
}

/// Replays `ops` on a clean machine and runs the happens-before
/// analysis on the produced coherence stream.
///
/// # Errors
///
/// Replay failure (see [`replay_events_jsonl`]).
pub fn replay_and_analyze(
    config: &SystemConfig,
    ops: &[TraceOp],
    subject: &str,
) -> Result<Report, String> {
    let text = replay_events_jsonl(config, ops, false)?;
    Ok(analyze_jsonl(&text, subject))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line_no: usize, event: CohEvent) -> CohRecord {
        CohRecord { seq: line_no as u64, cycle: line_no as u64, line_no, event }
    }

    fn rules(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    /// The clean §4.3.3 exchange: core 0 creates a line, the message
    /// reaches core 1's cached entry, core 1 then reads the line.
    #[test]
    fn delivered_update_orders_the_reader() {
        let records = vec![
            rec(1, CohEvent::Fill { core: 1, opn: 9 }),
            rec(2, CohEvent::Access { core: 1, opn: 9, line: 3, write: false }),
            rec(3, CohEvent::Access { core: 0, opn: 9, line: 3, write: true }),
            rec(4, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 }),
            rec(5, CohEvent::ObitUpdate { src: 0, dest: 1, opn: 9, line: 3 }),
            rec(6, CohEvent::Access { core: 1, opn: 9, line: 3, write: false }),
        ];
        let report = analyze_records(&records, "t");
        assert!(report.findings.is_empty(), "{}", report.to_human());
    }

    /// The canary shape: the update message to core 1 is lost, so its
    /// next access rides a view that never observed the write.
    #[test]
    fn lost_update_is_a_c001_race() {
        let records = vec![
            rec(1, CohEvent::Fill { core: 1, opn: 9 }),
            rec(2, CohEvent::Access { core: 0, opn: 9, line: 3, write: true }),
            rec(3, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 }),
            // No ObitUpdate, no Fill: core 1 still has its old entry.
            rec(4, CohEvent::Access { core: 1, opn: 9, line: 3, write: false }),
        ];
        let report = analyze_records(&records, "t");
        assert_eq!(rules(&report), vec!["PA-C001"], "{}", report.to_human());
    }

    /// A fill after the write re-synchronizes the view: no race.
    #[test]
    fn refill_after_write_is_ordered() {
        let records = vec![
            rec(1, CohEvent::Access { core: 0, opn: 9, line: 3, write: true }),
            rec(2, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 }),
            rec(3, CohEvent::Fill { core: 1, opn: 9 }),
            rec(4, CohEvent::Access { core: 1, opn: 9, line: 3, write: false }),
        ];
        let report = analyze_records(&records, "t");
        assert!(report.findings.is_empty(), "{}", report.to_human());
    }

    #[test]
    fn update_without_read_exclusive_is_c002() {
        let records = vec![rec(1, CohEvent::ObitUpdate { src: 0, dest: 1, opn: 9, line: 3 })];
        let report = analyze_records(&records, "t");
        assert_eq!(rules(&report), vec!["PA-C002"], "{}", report.to_human());
    }

    #[test]
    fn promotion_visible_before_shootdown_end_is_c003() {
        let records = vec![
            rec(1, CohEvent::Promote { core: 0, opn: 9 }),
            rec(2, CohEvent::ShootdownBegin { core: 0, opn: 9 }),
            rec(3, CohEvent::ShootdownAck { core: 0, from: 1, opn: 9 }),
            rec(4, CohEvent::Access { core: 1, opn: 9, line: 0, write: false }),
            rec(5, CohEvent::ShootdownEnd { core: 0, opn: 9 }),
        ];
        let report = analyze_records(&records, "t");
        assert_eq!(rules(&report), vec!["PA-C003"], "{}", report.to_human());
    }

    #[test]
    fn unordered_updates_to_one_line_are_c004() {
        let records = vec![
            rec(1, CohEvent::Access { core: 0, opn: 9, line: 3, write: true }),
            rec(2, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 }),
            rec(3, CohEvent::ObitUpdate { src: 0, dest: 2, opn: 9, line: 3 }),
            // Core 1 never synchronized with core 0, yet sends its own
            // update for the same line (it also never acquired the
            // line, so C002 fires alongside; ownership check uses the
            // transferred owner after the first acquisition).
            rec(4, CohEvent::ObitUpdate { src: 1, dest: 2, opn: 9, line: 3 }),
        ];
        let report = analyze_records(&records, "t");
        assert!(rules(&report).contains(&"PA-C004"), "{}", report.to_human());
    }

    #[test]
    fn stale_access_inside_window_is_c005() {
        let records = vec![
            rec(1, CohEvent::ShootdownBegin { core: 0, opn: 9 }),
            rec(2, CohEvent::Access { core: 1, opn: 9, line: 0, write: false }),
            rec(3, CohEvent::ShootdownAck { core: 0, from: 1, opn: 9 }),
            rec(4, CohEvent::ShootdownEnd { core: 0, opn: 9 }),
        ];
        let report = analyze_records(&records, "t");
        assert_eq!(rules(&report), vec!["PA-C005"], "{}", report.to_human());
    }

    #[test]
    fn protocol_violations_are_c006() {
        let report =
            analyze_records(&[rec(1, CohEvent::ShootdownAck { core: 0, from: 1, opn: 9 })], "t");
        assert_eq!(rules(&report), vec!["PA-C006"], "{}", report.to_human());

        // Re-acquisition alone is legal (refilled entries re-run the
        // overlaying-write path); acquisition inside an open shootdown
        // window is not.
        let report = analyze_records(
            &[
                rec(1, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 }),
                rec(2, CohEvent::ReadExclusive { core: 1, opn: 9, line: 3 }),
            ],
            "t",
        );
        assert!(report.findings.is_empty(), "{}", report.to_human());
        let report = analyze_records(
            &[
                rec(1, CohEvent::ShootdownBegin { core: 0, opn: 9 }),
                rec(2, CohEvent::ReadExclusive { core: 1, opn: 9, line: 3 }),
                rec(3, CohEvent::ShootdownAck { core: 0, from: 1, opn: 9 }),
                rec(4, CohEvent::ShootdownEnd { core: 0, opn: 9 }),
            ],
            "t",
        );
        assert_eq!(rules(&report), vec!["PA-C006"], "{}", report.to_human());

        let report = analyze_records(&[rec(1, CohEvent::ShootdownBegin { core: 0, opn: 9 })], "t");
        assert_eq!(rules(&report), vec!["PA-C006"], "never-closed window: {}", report.to_human());
    }

    #[test]
    fn shootdown_end_forces_refills_everywhere() {
        // After a completed shootdown, the old creation is published
        // through the page clock: a refilled core is ordered, and the
        // initiator's own next access (post-refill) is too.
        let records = vec![
            rec(1, CohEvent::Fill { core: 1, opn: 9 }),
            rec(2, CohEvent::Access { core: 0, opn: 9, line: 3, write: true }),
            rec(3, CohEvent::ReadExclusive { core: 0, opn: 9, line: 3 }),
            rec(4, CohEvent::ObitUpdate { src: 0, dest: 1, opn: 9, line: 3 }),
            rec(5, CohEvent::Promote { core: 0, opn: 9 }),
            rec(6, CohEvent::ShootdownBegin { core: 0, opn: 9 }),
            rec(7, CohEvent::ShootdownAck { core: 0, from: 1, opn: 9 }),
            rec(8, CohEvent::ShootdownEnd { core: 0, opn: 9 }),
            rec(9, CohEvent::Fill { core: 1, opn: 9 }),
            rec(10, CohEvent::Access { core: 1, opn: 9, line: 3, write: false }),
        ];
        let report = analyze_records(&records, "t");
        assert!(report.findings.is_empty(), "{}", report.to_human());
    }

    #[test]
    fn jsonl_entry_point_merges_parse_errors() {
        let text = "\
{\"seq\":0,\"cycle\":0,\"kind\":\"CohFill\"}\n\
{\"seq\":1,\"cycle\":1,\"kind\":\"CohObitUpdate\",\"src\":0,\"dest\":1,\"opn\":9,\"line\":3}\n";
        let report = analyze_jsonl(text, "t");
        let r = rules(&report);
        assert!(r.contains(&"PA-C000"), "{}", report.to_human());
        assert!(r.contains(&"PA-C002"), "{}", report.to_human());
    }
}
