//! Front 1: the abstract trace verifier.
//!
//! Symbolically executes validated `.trace` files (the deterministic
//! simulation harness format) over a must/may abstraction of the
//! overlay state machine and reports operations that are provably dead,
//! provably failing, or provably wasteful — without running the timing
//! simulator.
//!
//! # Rule catalog
//!
//! | Rule    | Severity | Meaning |
//! |---------|----------|---------|
//! | PA-V000 | error    | the trace does not parse (format v2 violation) |
//! | PA-V001 | warn     | dead op: before any process, past the ASID cap, or a zero-page map |
//! | PA-V002 | warn     | op targets a page that is never mapped: must fail |
//! | PA-V003 | info     | dead overlay op: seed/commit/discard/reclaim with nothing to act on |
//! | PA-V004 | warn     | crash point scheduled past the trace's total poll count |
//! | PA-V005 | warn     | lazy overlay allocation can exceed the configured OMS budget |
//! | PA-V006 | info     | trace ends with overlay lines resident but not OMS-backed |
//! | PA-V007 | warn     | `OnCore` selects a core id at or past the configured core count |
//!
//! The multi-core **concurrency verifier** (PA-C000..PA-C006) is the
//! third front, documented in [`concurrency`]: it replays the machine's
//! coherence annotation stream with per-core vector clocks instead of
//! symbolically executing the trace.
//!
//! Every semantic rule is gated on the interpreter still being
//! *precise*: once an allocation may fail (physical memory upper bound
//! crossed, or `assume_faults`), must-claims are withheld rather than
//! risked. A trace is [`Verdict::Reject`]ed only for PA-V000 — the
//! harness treats benign runtime failures as skips, so every
//! well-formed trace replays.

pub mod coh_events;
pub mod concurrency;
pub mod interp;
pub mod lattice;
pub mod protocol;
pub mod vclock;

pub use coh_events::{parse_jsonl, CohEvent, CohRecord};
pub use concurrency::{analyze_jsonl, analyze_records, replay_and_analyze, replay_events_jsonl};
pub use interp::{AbsPage, AbsState, TlbView, VerifierOptions};
pub use lattice::{LineSet, Tri};
pub use vclock::VClock;

use crate::findings::{Finding, Report, Severity};
use po_sim::{read_trace, SystemConfig, TraceOp};

/// Whether the artifact is usable at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The trace parses and replays (findings may still exist).
    Accept,
    /// The trace is rejected outright (parse error).
    Reject,
}

/// The complete result of verifying one trace.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// [`Verdict::Reject`] iff the trace failed to parse.
    pub verdict: Verdict,
    /// All findings, sorted.
    pub report: Report,
    /// Final abstract state (empty when the trace was rejected).
    pub state: AbsState,
}

/// Verifies an already-parsed op list. Never rejects.
#[must_use]
pub fn verify_ops(
    config: &SystemConfig,
    ops: &[TraceOp],
    opts: &VerifierOptions,
    subject: &str,
) -> Analysis {
    let (report, state) = interp::verify_ops(config, ops, opts, subject);
    Analysis { verdict: Verdict::Accept, report, state }
}

/// Parses `text` as a v2 `.trace` document and verifies it. A parse
/// error yields PA-V000 and [`Verdict::Reject`].
#[must_use]
pub fn verify_trace_text(
    config: &SystemConfig,
    text: &str,
    opts: &VerifierOptions,
    subject: &str,
) -> Analysis {
    match read_trace(text.as_bytes()) {
        Ok(ops) => verify_ops(config, &ops, opts, subject),
        Err(e) => {
            let mut report = Report::new();
            report.push(Finding::new(
                "PA-V000",
                Severity::Error,
                subject,
                0,
                format!("trace does not parse: {e}"),
            ));
            Analysis { verdict: Verdict::Reject, report, state: AbsState::default() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_rejects_with_v000() {
        let a = verify_trace_text(
            &SystemConfig::table2_overlay(),
            "!trace-version 2\nBOGUS 1\n",
            &VerifierOptions::default(),
            "bad.trace",
        );
        assert_eq!(a.verdict, Verdict::Reject);
        assert_eq!(a.report.findings.len(), 1);
        assert_eq!(a.report.findings[0].rule, "PA-V000");
        assert_eq!(a.report.findings[0].severity, Severity::Error);
    }

    #[test]
    fn well_formed_trace_accepts() {
        let a = verify_trace_text(
            &SystemConfig::table2_overlay(),
            "!trace-version 2\nP\nM 0 100 2\n",
            &VerifierOptions::default(),
            "ok.trace",
        );
        assert_eq!(a.verdict, Verdict::Accept);
        assert!(a.report.findings.is_empty(), "{}", a.report.to_human());
        assert_eq!(a.state.procs, 1);
    }
}
