//! Per-core vector clocks for the happens-before analysis.
//!
//! A [`VClock`] maps core ids to event counts. The concurrency verifier
//! keeps one clock per core, advances a core's own component at each of
//! its observation points, and joins clocks along synchronization edges
//! (coherence messages, TLB fills, shootdown acks). Two events are
//! ordered by happens-before iff the earlier one's clock is ≤ the view
//! the later one executed under.

/// A vector clock over core ids. Components default to zero; the vector
/// grows on demand, so the verifier needs no up-front core count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    comps: Vec<u64>,
}

impl VClock {
    /// The zero clock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// This clock's component for `core`.
    #[must_use]
    pub fn get(&self, core: usize) -> u64 {
        self.comps.get(core).copied().unwrap_or(0)
    }

    /// Advances `core`'s own component by one (a local event).
    pub fn tick(&mut self, core: usize) {
        if self.comps.len() <= core {
            self.comps.resize(core + 1, 0);
        }
        self.comps[core] += 1;
    }

    /// Pointwise maximum: after `self.join(other)` every component of
    /// `other` happens-before `self`'s current point.
    pub fn join(&mut self, other: &VClock) {
        if self.comps.len() < other.comps.len() {
            self.comps.resize(other.comps.len(), 0);
        }
        for (i, &c) in other.comps.iter().enumerate() {
            if self.comps[i] < c {
                self.comps[i] = c;
            }
        }
    }

    /// `true` iff every component of `self` is ≤ the matching component
    /// of `other` — i.e. the point `self` captures happens-before (or
    /// equals) the view `other` captures.
    #[must_use]
    pub fn le(&self, other: &VClock) -> bool {
        self.comps.iter().enumerate().all(|(i, &c)| c <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        c.tick(0);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(7), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn le_orders_joined_clocks_only() {
        let mut w = VClock::new();
        w.tick(0); // the write
        let mut synced = VClock::new();
        synced.tick(1);
        synced.join(&w); // received the message
        let mut stale = VClock::new();
        stale.tick(1); // never synchronized
        assert!(w.le(&synced), "message receipt orders the write before the reader");
        assert!(!w.le(&stale), "an unsynchronized view leaves the pair unordered");
        assert!(w.le(&w), "le is reflexive");
    }
}
