//! Every po-analyze rule has a seeded true-positive fixture under
//! `fixtures/`, and the current source tree runs clean. These tests pin
//! both halves: a rule that stops firing on its fixture has regressed,
//! and a finding on the tree is a real defect (or needs an explicit
//! `po-analyze: allow`).

use po_analyze::lints::{self, fault_threading, tokenizer::ScannedFile};
use po_analyze::verifier::analyze_jsonl;
use po_analyze::{verify_trace_text, Report, Severity, Verdict, VerifierOptions};
use po_sim::SystemConfig;
use std::path::{Path, PathBuf};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

fn verify_fixture(rel: &str, opts: &VerifierOptions) -> po_analyze::Analysis {
    verify_trace_text(&SystemConfig::table2_overlay(), &fixture(rel), opts, rel)
}

#[test]
fn v000_malformed_trace_is_rejected() {
    let a = verify_fixture("traces/dirty/v000_malformed.trace", &VerifierOptions::default());
    assert_eq!(a.verdict, Verdict::Reject);
    assert_eq!(rules(&a.report), vec!["PA-V000"]);
    assert_eq!(a.report.max_severity(), Some(Severity::Error));
}

#[test]
fn v001_dead_op_fires() {
    let a = verify_fixture("traces/dirty/v001_dead_op.trace", &VerifierOptions::default());
    assert_eq!(a.verdict, Verdict::Accept);
    assert_eq!(rules(&a.report), vec!["PA-V001"], "{}", a.report.to_human());
}

#[test]
fn v002_unmapped_poke_fires() {
    let a = verify_fixture("traces/dirty/v002_unmapped_poke.trace", &VerifierOptions::default());
    assert_eq!(rules(&a.report), vec!["PA-V002"], "{}", a.report.to_human());
}

#[test]
fn v003_dead_commit_fires() {
    let a = verify_fixture("traces/dirty/v003_dead_commit.trace", &VerifierOptions::default());
    assert_eq!(rules(&a.report), vec!["PA-V003"], "{}", a.report.to_human());
}

#[test]
fn v004_unreachable_crash_point_fires() {
    let opts = VerifierOptions { crash_queries: vec![5], ..Default::default() };
    let a = verify_fixture("traces/dirty/v004_short_trace.trace", &opts);
    assert_eq!(rules(&a.report), vec!["PA-V004"], "{}", a.report.to_human());
    // Without the query the same trace is clean.
    let a = verify_fixture("traces/dirty/v004_short_trace.trace", &VerifierOptions::default());
    assert!(a.report.findings.is_empty(), "{}", a.report.to_human());
}

#[test]
fn v005_oms_overflow_fires_under_tight_budget() {
    let opts = VerifierOptions { oms_limit: Some(768), ..Default::default() };
    let a = verify_fixture("traces/dirty/v005_oms_overflow.trace", &opts);
    assert_eq!(rules(&a.report), vec!["PA-V005"], "{}", a.report.to_human());
    // A budget covering the 1024-byte peak settles it.
    let opts = VerifierOptions { oms_limit: Some(1024), ..Default::default() };
    let a = verify_fixture("traces/dirty/v005_oms_overflow.trace", &opts);
    assert!(a.report.findings.is_empty(), "{}", a.report.to_human());
}

#[test]
fn v005_frag_slack_fires_only_with_headroom_armed() {
    // The budget covers the raw 1024-byte peak, so without slack the
    // trace is clean; demanding 50 % fragmentation headroom trips it.
    let opts = VerifierOptions { oms_limit: Some(1280), frag_slack: 0.5, ..Default::default() };
    let a = verify_fixture("traces/dirty/v005_frag_slack.trace", &opts);
    assert_eq!(rules(&a.report), vec!["PA-V005"], "{}", a.report.to_human());
    assert!(
        a.report.findings[0].message.contains("fragmentation slack"),
        "{}",
        a.report.to_human()
    );
    let opts = VerifierOptions { oms_limit: Some(1280), ..Default::default() };
    let a = verify_fixture("traces/dirty/v005_frag_slack.trace", &opts);
    assert!(a.report.findings.is_empty(), "{}", a.report.to_human());
}

#[test]
fn v006_resident_tail_fires() {
    let a = verify_fixture("traces/dirty/v006_resident_tail.trace", &VerifierOptions::default());
    assert_eq!(rules(&a.report), vec!["PA-V006"], "{}", a.report.to_human());
}

#[test]
fn v007_oncore_out_of_range_fires() {
    // On the default single-core config, `A 3` wraps — and warns.
    let a = verify_fixture("traces/dirty/v007_oncore_range.trace", &VerifierOptions::default());
    assert_eq!(a.verdict, Verdict::Accept);
    assert_eq!(rules(&a.report), vec!["PA-V007"], "{}", a.report.to_human());
    assert!(a.report.findings[0].message.contains("wraps it to core 0"), "{}", a.report.to_human());
    // With enough configured cores the same trace is clean.
    let mut config = SystemConfig::table2_overlay();
    config.cores = 8;
    let a = verify_trace_text(
        &config,
        &fixture("traces/dirty/v007_oncore_range.trace"),
        &VerifierOptions::default(),
        "v007",
    );
    assert!(a.report.findings.is_empty(), "{}", a.report.to_human());
}

#[test]
fn clean_traces_are_clean() {
    for rel in ["traces/clean/fork_poke_flush.trace", "traces/clean/commit_discard.trace"] {
        let a = verify_fixture(rel, &VerifierOptions::default());
        assert_eq!(a.verdict, Verdict::Accept, "{rel}");
        assert!(a.report.findings.is_empty(), "{rel}:\n{}", a.report.to_human());
    }
}

#[test]
fn l001_width_mismatch_fires() {
    let report = lints::lint_source("l001.rs", &fixture("lints/l001_width_mismatch.rs"));
    assert_eq!(rules(&report), vec!["PA-L001"], "{}", report.to_human());
    assert!(report.findings[0].message.contains("put_u8"), "{}", report.findings[0].message);
}

#[test]
fn l002_unbacked_counter_fires() {
    let report = lints::lint_source("l002.rs", &fixture("lints/l002_unbacked_counter.rs"));
    assert_eq!(rules(&report), vec!["PA-L002"], "{}", report.to_human());
    assert!(report.findings[0].message.contains("widget.misses"), "{}", report.findings[0].message);
}

#[test]
fn l003_unthreaded_variant_fires() {
    let corpus = vec![(
        "l003.rs".to_string(),
        ScannedFile::scan(&fixture("lints/l003_unthreaded_variant.rs")),
    )];
    let mut report = Report::new();
    fault_threading::check(&corpus, &mut report);
    let fired = rules(&report);
    assert!(fired.iter().all(|r| *r == "PA-L003"), "{}", report.to_human());
    assert!(
        report.findings.iter().any(|f| f.message.contains("missing from FaultSite::ALL")),
        "{}",
        report.to_human()
    );
    assert!(
        report.findings.iter().any(|f| f.message.contains("never threaded")),
        "{}",
        report.to_human()
    );
}

#[test]
fn l004_orphan_sink_fires() {
    let report = lints::lint_source("l004.rs", &fixture("lints/l004_orphan_sink.rs"));
    assert_eq!(rules(&report), vec!["PA-L004"], "{}", report.to_human());
}

#[test]
fn l005_private_drive_loop_fires() {
    // The rule only scopes binary targets, so the fixture is linted
    // under a `src/bin/…` label.
    let report =
        lints::lint_source("src/bin/l005.rs", &fixture("lints/l005_private_drive_loop.rs"));
    let fired = rules(&report);
    assert_eq!(fired, vec!["PA-L005", "PA-L005", "PA-L005"], "{}", report.to_human());
    assert!(report.findings[0].message.contains("shared runner"), "{}", report.to_human());
    // Outside a bin path the same source is not this rule's business.
    let report = lints::lint_source("l005.rs", &fixture("lints/l005_private_drive_loop.rs"));
    assert!(rules(&report).is_empty(), "{}", report.to_human());
}

#[test]
fn l005_runner_submission_is_clean() {
    let report =
        lints::lint_source("src/bin/l005_clean.rs", &fixture("lints/l005_clean_runner_use.rs"));
    assert!(report.findings.is_empty(), "{}", report.to_human());
}

#[test]
fn l006_unaccounted_coherence_fires_in_scope() {
    // The rule scopes machine-driving code, so the fixture is linted
    // under a `crates/mc/…` label.
    let text = fixture("lints/l006_unaccounted_coherence.rs");
    let report = lints::lint_source("crates/mc/src/router.rs", &text);
    assert_eq!(rules(&report), vec!["PA-L006", "PA-L006"], "{}", report.to_human());
    assert!(report.findings[0].message.contains("synchronization edge"), "{}", report.to_human());
    // Outside sim/ or mc/ the same source is not this rule's business.
    let report = lints::lint_source("crates/tlb/src/router.rs", &text);
    assert!(rules(&report).is_empty(), "{}", report.to_human());
}

#[test]
fn l007_seam_bypass_fires_in_scope() {
    // The rule scopes backend-generic simulator code, so the fixture is
    // linted under a `crates/sim/…` label.
    let text = fixture("lints/l007_seam_bypass.rs");
    let report = lints::lint_source("crates/sim/src/sweep.rs", &text);
    assert_eq!(rules(&report), vec!["PA-L007", "PA-L007", "PA-L007"], "{}", report.to_human());
    assert!(report.findings[0].message.contains("AddressTranslation"), "{}", report.to_human());
    // In the backend crates the same source is not this rule's business.
    let report = lints::lint_source("crates/xlate/src/lib.rs", &text);
    assert!(rules(&report).is_empty(), "{}", report.to_human());
}

#[test]
fn l007_trait_routed_observation_is_clean() {
    let report = lints::lint_source(
        "crates/sim/src/observe.rs",
        &fixture("lints/l007_clean_observation.rs"),
    );
    assert!(report.findings.is_empty(), "{}", report.to_human());
}

#[test]
fn c_rule_event_fixtures_fire_their_encoded_rule() {
    // Every dirty events fixture trips exactly the rule its filename
    // encodes (cNNN_*.jsonl → PA-CNNN), mirroring the CI race-analyze
    // job's filename convention.
    for (name, rule) in [
        ("c000_malformed_event", "PA-C000"),
        ("c001_lost_update", "PA-C001"),
        ("c002_unowned_update", "PA-C002"),
        ("c003_early_promotion_visibility", "PA-C003"),
        ("c004_unordered_updates", "PA-C004"),
        ("c005_stale_window_access", "PA-C005"),
        ("c006_orphan_ack", "PA-C006"),
    ] {
        let text = fixture(&format!("events/dirty/{name}.jsonl"));
        let report = analyze_jsonl(&text, name);
        let fired: std::collections::BTreeSet<_> = rules(&report).into_iter().collect();
        assert_eq!(fired.len(), 1, "{name} fired {fired:?}:\n{}", report.to_human());
        assert!(fired.contains(rule), "{name} fired {fired:?}, want {rule}");
    }
}

#[test]
fn clean_event_fixtures_are_clean() {
    for name in ["delivered_update", "promotion_shootdown"] {
        let report = analyze_jsonl(&fixture(&format!("events/clean/{name}.jsonl")), name);
        assert!(report.findings.is_empty(), "{name}:\n{}", report.to_human());
    }
}

#[test]
fn clean_lint_fixture_is_clean() {
    let text = fixture("lints/clean.rs");
    let report = lints::lint_source("clean.rs", &text);
    assert!(report.findings.is_empty(), "{}", report.to_human());
    let corpus = vec![("clean.rs".to_string(), ScannedFile::scan(&text))];
    let mut report = Report::new();
    fault_threading::check(&corpus, &mut report);
    assert!(report.findings.is_empty(), "{}", report.to_human());
}

#[test]
fn source_tree_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lints::run_lints(&root).expect("walk workspace");
    assert!(
        report.findings.is_empty(),
        "the tree must lint clean (or carry explicit allows):\n{}",
        report.to_human()
    );
}
