//! Seeded PA-L006 true positive: a multi-core scheduler helper that
//! delivers OBitVector updates and shoots down remote entries without
//! threading the telemetry sink or bumping the mirrored coherence
//! counters. (Linted under a `crates/mc/…` path label by the fixture
//! test — the file itself lives in `fixtures/`, which the tree walk
//! skips.)

pub struct Router {
    tlbs: Vec<Tlb>,
}

impl Router {
    /// Delivers a single-line update to every remote TLB copy: the
    /// functional patch lands, but no `CohObitUpdate` event and no
    /// `coherence_remote_updates` bump — the PA-C verifier would see a
    /// lost synchronization edge here.
    pub fn deliver_update(&mut self, asid: Asid, vpn: Vpn, line: usize) {
        for tlb in &mut self.tlbs {
            tlb.coherence_obit_update(asid, vpn, line, true);
        }
    }

    /// Invalidates every copy with no ack events and no
    /// `coherence_invalidations` bump.
    pub fn drop_entries(&mut self, asid: Asid, vpn: Vpn) {
        for tlb in &mut self.tlbs {
            tlb.shootdown(asid, vpn);
        }
    }
}
