// Seeded true positive for PA-L002: a telemetry counter is emitted with
// no backing `Counter` stat field, so the statistic vanishes whenever
// telemetry is disabled.
// Not compiled -- consumed as text by the fixture tests.

pub struct WidgetStats {
    pub hits: Counter,
}

pub struct Widget {
    stats: WidgetStats,
    sink: TelemetrySink,
}

impl Widget {
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    pub fn touch(&mut self) {
        self.stats.hits.inc();
        self.sink.count("widget.hits", 1);
        // "misses" has no `misses: Counter` field anywhere in this file.
        self.sink.count("widget.misses", 1);
    }
}
