//! PA-L005 clean counterpart: the same experiment expressed as
//! workload jobs submitted to the shared shard pool. (Linted with a
//! `src/bin/…` path label; never compiled.)

fn main() {
    let args = Args::from_env();
    let pool = ShardPool::from_args(&args);
    let pairs = run_fork_suite_pairs(&pool, 300_000, 500_000, 42, None).expect("suite");
    for pair in &pairs {
        println!("{} {:.3}", pair.spec.name, pair.oow().cpi);
    }
}
