//! Seeded PA-L007 true positive: backend-generic simulator code that
//! reaches past the AddressTranslation seam — walking the raw OMT and
//! constructing translation state of its own. (Linted with a
//! `crates/sim/…` path label; never compiled.)

fn sweep(machine: &Machine) -> usize {
    let mut held = 0;
    for (&opn, entry) in machine.overlay().omt().iter() {
        held += entry.resident_lines(opn);
    }
    held
}

fn shadow_walk(asid: Asid, va: VirtAddr) -> Pte {
    let mut os = OsModel::new(VmConfig::default());
    let table: &PageTable = os.table_for(asid);
    table.walk(va).expect("walk")
}
