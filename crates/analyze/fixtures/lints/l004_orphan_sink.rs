// Seeded true positive for PA-L004: a component holds a TelemetrySink
// field but exposes no installer, so the sink stays a no-op forever.
// Not compiled -- consumed as text by the fixture tests.

pub struct OrphanStats {
    pub pokes: Counter,
}

pub struct Orphan {
    stats: OrphanStats,
    sink: TelemetrySink,
}

impl Orphan {
    pub fn poke(&mut self) {
        self.stats.pokes.inc();
        self.sink.count("orphan.pokes", 1);
    }
}
