//! PA-L007 clean counterpart: the same questions answered through the
//! supported observation surface — trait-routed accessors and per-page
//! probes, no raw table access. (Linted with a `crates/sim/…` path
//! label; never compiled.)

fn sweep(machine: &Machine) -> usize {
    machine
        .overlay_pages()
        .iter()
        .map(|&opn| machine.overlay().resident_lines(opn))
        .sum()
}

fn observe(machine: &Machine, asid: Asid, va: VirtAddr) -> (bool, f64) {
    let pte = machine.os().translate(asid, va).expect("walk");
    let overlaid = machine
        .overlay()
        .obitvec(Opn::encode(asid, va.vpn()))
        .map(|v| v.contains(va.line_in_page()))
        .unwrap_or(false);
    (pte.flags.overlay_enabled && overlaid, machine.overlay().omt_cache().hit_rate())
}
