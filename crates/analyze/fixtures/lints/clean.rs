// Clean fixture: passes every lint rule.
// Not compiled -- consumed as text by the fixture tests.

pub struct GoodStats {
    pub pokes: Counter,
}

pub struct Good {
    stats: GoodStats,
    sink: TelemetrySink,
}

impl Good {
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    pub fn poke(&mut self) {
        self.stats.pokes.inc();
        self.sink.count("good.pokes", 1);
    }

    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.stats.pokes.get());
    }

    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let pokes = r.get_u64()?;
        Ok(Self::from_pokes(pokes))
    }
}
