// Seeded true positive for PA-L001: decode reads a different width
// than encode wrote (u8 vs u32), so every restore shears.
// Not compiled -- consumed as text by the fixture tests.

pub struct Broken {
    a: u64,
    b: u8,
}

impl Broken {
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.a);
        w.put_u8(self.b);
    }

    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let a = r.get_u64()?;
        let b = r.get_u32()?;
        Ok(Self { a, b: b as u8 })
    }
}
