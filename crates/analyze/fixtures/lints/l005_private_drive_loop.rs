//! Seeded PA-L005 true positive: a bench binary that re-grew a private
//! machine-drive loop instead of submitting jobs to the shared runner.
//! (Linted with a `src/bin/…` path label; never compiled.)

fn main() {
    let config = SystemConfig::table2_overlay();
    let mut machine = Machine::new(config);
    let asid = machine.os_mut().spawn_process().expect("spawn");
    run_trace(&mut machine, asid, &ops).expect("trace");
    let fork = run_fork_experiment(cfg2, base_vpn, mapped, &warmup, &post).expect("fork");
    println!("{} {}", machine.snapshot().cycles, fork.cpi);
}
