// Seeded true positive for PA-L003: `GammaFault` is missing from the
// `ALL` table, and no file outside this one references any variant.
// Not compiled -- consumed as text by the fixture tests.

pub enum FaultSite {
    AlphaFault,
    GammaFault,
}

impl FaultSite {
    pub const ALL: [FaultSite; 1] = [
        FaultSite::AlphaFault,
    ];
}
