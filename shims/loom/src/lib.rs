//! Offline stand-in for the `loom` model checker.
//!
//! [`model`] runs a closure under **every** interleaving of its
//! instrumented operations and lets the closure's own assertions judge
//! each one. Threads spawned with [`thread::spawn`] become *logical*
//! threads driven by a cooperative scheduler: exactly one is ever
//! executing between instrumented points, and at each point the
//! scheduler branches over every runnable thread. The branch choices
//! are recorded per execution and explored depth-first with
//! backtracking, so a test passes only if it holds on *all*
//! schedules — the property the bench shard pool's atomic-cursor claim
//! loop is checked against.
//!
//! Scope (deliberately minimal, matching what this workspace uses):
//!
//! * [`sync::atomic::AtomicUsize`] — every operation is a scheduling
//!   point; semantics are sequentially consistent regardless of the
//!   `Ordering` argument (the shim explores interleavings, not memory
//!   reordering — the real loom is stronger here).
//! * [`thread::spawn`] / [`thread::JoinHandle::join`] — `join` blocks
//!   the logical thread; all spawned threads must be joined before the
//!   model closure returns.
//! * [`sync::Arc`] — re-exported from `std` (no leak tracking).
//!
//! A panic on any schedule is rethrown with the schedule's decision
//! string, so a failing interleaving is reproducible by eye.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Upper bound on explored executions: a state-space explosion in a
/// test is a bug in the test's bounds, not something to wait out.
const MAX_EXECUTIONS: usize = 200_000;

/// A logical thread's scheduler state.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Eligible to be scheduled (its next instrumented step can run).
    Runnable,
    /// Waiting for another logical thread to finish (`join`).
    Blocked(usize),
    /// The thread's closure returned.
    Finished,
}

/// One branch point: which runnable thread was picked, out of how many.
#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    alternatives: usize,
}

#[derive(Debug)]
struct State {
    status: Vec<Status>,
    /// Logical thread currently allowed to execute (usize::MAX: none —
    /// the execution is over).
    active: usize,
    /// Branch decisions: replayed up to `cursor`, recorded past it.
    path: Vec<Choice>,
    cursor: usize,
    /// First panic observed on any logical thread, with its payload
    /// rendered to a string; aborts the execution.
    failed: Option<String>,
}

#[derive(Debug)]
struct Exec {
    state: Mutex<State>,
    cv: Condvar,
}

impl Exec {
    fn new(replay: Vec<Choice>) -> Self {
        Self {
            state: Mutex::new(State {
                status: vec![Status::Runnable],
                active: 0,
                path: replay,
                cursor: 0,
                failed: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks the calling logical thread until the scheduler hands it
    /// the active slot. Propagates a failure from any other thread.
    fn acquire<'a>(&'a self, me: usize) -> std::sync::MutexGuard<'a, State> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.active != me {
            if let Some(msg) = &s.failed {
                panic!("model execution failed on another thread: {msg}");
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s
    }

    /// Picks the next active thread among the runnable ones — the
    /// branch point of the exploration. Replays a recorded choice when
    /// one exists, otherwise records the first alternative.
    fn release_to_next(&self, s: &mut State) {
        let runnable: Vec<usize> = s
            .status
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if s.status.iter().all(|st| *st == Status::Finished) {
                s.active = usize::MAX;
                self.cv.notify_all();
                return;
            }
            s.failed = Some("deadlock: no runnable logical thread".to_string());
            self.cv.notify_all();
            panic!("deadlock: no runnable logical thread");
        }
        let k = if s.cursor < s.path.len() {
            debug_assert_eq!(
                s.path[s.cursor].alternatives,
                runnable.len(),
                "replay divergence: the model closure is not deterministic"
            );
            s.path[s.cursor].chosen
        } else {
            s.path.push(Choice { chosen: 0, alternatives: runnable.len() });
            0
        };
        s.cursor += 1;
        s.active = runnable[k];
        self.cv.notify_all();
    }

    /// One instrumented step: wait to be scheduled, run `op`, branch.
    fn step<R>(&self, me: usize, op: impl FnOnce() -> R) -> R {
        let mut s = self.acquire(me);
        let r = op();
        self.release_to_next(&mut s);
        r
    }

    fn fail(&self, msg: String) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.failed.is_none() {
            s.failed = Some(msg);
        }
        s.active = usize::MAX;
        self.cv.notify_all();
    }
}

std::thread_local! {
    static CTX: std::cell::RefCell<Option<(std::sync::Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn ctx() -> (std::sync::Arc<Exec>, usize) {
    CTX.with(|c| c.borrow().clone().expect("loom primitives may only be used inside loom::model"))
}

/// Shimmed `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Shimmed `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as O};

        /// An atomic counter whose every operation is a scheduling
        /// point. Semantics are sequentially consistent — the shim
        /// explores interleavings, not weak-memory reorderings.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(StdAtomicUsize);

        impl AtomicUsize {
            /// A new atomic holding `v`.
            #[must_use]
            pub fn new(v: usize) -> Self {
                Self(StdAtomicUsize::new(v))
            }

            /// Scheduled load.
            pub fn load(&self, _order: Ordering) -> usize {
                let (exec, me) = super::super::ctx();
                exec.step(me, || self.0.load(O::SeqCst))
            }

            /// Scheduled store.
            pub fn store(&self, v: usize, _order: Ordering) {
                let (exec, me) = super::super::ctx();
                exec.step(me, || self.0.store(v, O::SeqCst));
            }

            /// Scheduled atomic fetch-add.
            pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
                let (exec, me) = super::super::ctx();
                exec.step(me, || self.0.fetch_add(v, O::SeqCst))
            }

            /// Scheduled compare-exchange.
            ///
            /// # Errors
            ///
            /// The observed value, when it differs from `current`.
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<usize, usize> {
                let (exec, me) = super::super::ctx();
                exec.step(me, || self.0.compare_exchange(current, new, O::SeqCst, O::SeqCst))
            }
        }
    }
}

/// Shimmed `loom::thread`.
pub mod thread {
    use super::{ctx, Status, CTX};
    use std::sync::{Arc, Mutex};

    /// Handle to a spawned logical thread.
    pub struct JoinHandle<T> {
        id: usize,
        result: Arc<Mutex<Option<T>>>,
        os: std::thread::JoinHandle<()>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks the calling logical thread until the target finishes
        /// and returns its closure's value.
        ///
        /// # Errors
        ///
        /// Mirrors `std`: an `Err` carries the panic payload — though
        /// the shim aborts the whole model on a thread panic first, so
        /// in practice `join` only returns `Ok`.
        #[allow(clippy::missing_panics_doc)]
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = ctx();
            let mut s = exec.acquire(me);
            if s.status[self.id] != Status::Finished {
                s.status[me] = Status::Blocked(self.id);
                exec.release_to_next(&mut s);
                drop(s);
                s = exec.acquire(me);
            }
            exec.release_to_next(&mut s);
            drop(s);
            let _ = self.os.join();
            let v = self
                .result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("a finished logical thread has stored its result");
            Ok(v)
        }
    }

    /// Spawns a logical thread participating in the model's schedule
    /// exploration. The closure's first instrumented operation blocks
    /// until the scheduler picks the thread.
    pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
        let (exec, _) = ctx();
        let id = {
            let mut s = exec.state.lock().unwrap_or_else(|e| e.into_inner());
            s.status.push(Status::Runnable);
            s.status.len() - 1
        };
        let result = Arc::new(Mutex::new(None));
        let os = {
            let exec = Arc::clone(&exec);
            let result = Arc::clone(&result);
            std::thread::spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                match out {
                    Ok(v) => {
                        *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        // Finishing is itself a scheduled step, so the
                        // runnable set stays deterministic under replay.
                        let mut s = exec.acquire(id);
                        s.status[id] = Status::Finished;
                        for st in s.status.iter_mut() {
                            if *st == Status::Blocked(id) {
                                *st = Status::Runnable;
                            }
                        }
                        exec.release_to_next(&mut s);
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        exec.fail(msg);
                    }
                }
                CTX.with(|c| *c.borrow_mut() = None);
            })
        };
        JoinHandle { id, result, os }
    }
}

/// Runs `f` under every interleaving of its instrumented operations,
/// depth-first with backtracking. Panics (with the failing schedule)
/// if any execution panics, deadlocks, leaks an unjoined thread, or
/// the exploration exceeds [`MAX_EXECUTIONS`].
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    let mut replay: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "model exploration exceeded {MAX_EXECUTIONS} executions — tighten the test bounds"
        );
        let exec = std::sync::Arc::new(Exec::new(replay));
        CTX.with(|c| *c.borrow_mut() = Some((std::sync::Arc::clone(&exec), 0)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        CTX.with(|c| *c.borrow_mut() = None);
        let s = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        let schedule: String =
            s.path.iter().map(|c| c.chosen.to_string()).collect::<Vec<_>>().join(",");
        if let Some(msg) = &s.failed {
            panic!("model failed on schedule [{schedule}] (execution {executions}): {msg}");
        }
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|m| (*m).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("model failed on schedule [{schedule}] (execution {executions}): {msg}");
        }
        assert!(
            s.status.iter().enumerate().all(|(i, st)| i == 0 || *st == Status::Finished),
            "model closure returned with unjoined logical threads"
        );
        // Backtrack: bump the deepest choice with an unexplored
        // alternative, drop everything after it.
        let mut path = s.path.clone();
        drop(s);
        loop {
            match path.last_mut() {
                None => return,
                Some(last) if last.chosen + 1 < last.alternatives => {
                    last.chosen += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
        replay = path;
    }
}

/// Exploration statistics for the unit tests: outcomes observed across
/// all executions of a model, keyed by a caller-chosen label.
#[doc(hidden)]
pub fn explore_outcomes(f: impl Fn() -> usize + Send + Sync + 'static) -> BTreeMap<usize, usize> {
    let seen = std::sync::Arc::new(Mutex::new(BTreeMap::new()));
    let sink = std::sync::Arc::clone(&seen);
    model(move || {
        let out = f();
        *sink.lock().unwrap_or_else(|e| e.into_inner()).entry(out).or_insert(0) += 1;
    });
    std::sync::Arc::try_unwrap(seen)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    /// The canonical lost-update shape: two threads doing a non-atomic
    /// read-modify-write. Exhaustive exploration must find BOTH the
    /// clean outcome (2) and the lost update (1) — a scheduler that
    /// never interleaves between the load and the store would only
    /// ever see 2.
    #[test]
    fn finds_the_lost_update_interleaving() {
        let outcomes = super::explore_outcomes(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().expect("worker");
            }
            c.load(Ordering::SeqCst)
        });
        assert!(outcomes.contains_key(&2), "missed the sequential outcome: {outcomes:?}");
        assert!(outcomes.contains_key(&1), "missed the lost-update race: {outcomes:?}");
    }

    /// An atomic RMW has no racy window: every schedule ends at 2.
    #[test]
    fn atomic_rmw_is_race_free_on_every_schedule() {
        let outcomes = super::explore_outcomes(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().expect("worker");
            }
            c.load(Ordering::SeqCst)
        });
        assert_eq!(outcomes.keys().copied().collect::<Vec<_>>(), vec![2], "{outcomes:?}");
    }

    /// A failing schedule is reported with its decision string.
    #[test]
    fn failing_schedule_is_named() {
        let err = std::panic::catch_unwind(|| {
            super::model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&c);
                let h = super::thread::spawn(move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                });
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
                h.join().expect("worker");
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        })
        .expect_err("the racy model must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("schedule ["), "{msg}");
    }
}
