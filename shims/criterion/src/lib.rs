//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the API subset the repo's five bench targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is a plain `Instant`-based loop with a small,
//! fixed time budget per benchmark: enough to print a useful ns/iter
//! figure, fast enough that `cargo bench` over the whole workspace
//! stays in the tens of seconds. Benches are not tier-1; the shim's job
//! is to keep them compiling and runnable, not to be statistically
//! rigorous.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// routine call regardless; the variant only exists so call sites match
/// the real API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to set up.
    SmallInput,
    /// Inputs are expensive to set up.
    LargeInput,
    /// One routine call per setup call.
    PerIteration,
}

/// Units for per-iteration throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the user's closure; `iter`/`iter_batched` record timing.
pub struct Bencher {
    /// Total measured time across recorded iterations.
    elapsed: Duration,
    /// Number of recorded iterations.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self { elapsed: Duration::ZERO, iters: 0, budget }
    }

    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            hint::black_box(routine());
            let end = Instant::now();
            self.elapsed += end - start;
            self.iters += 1;
            if end >= deadline {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            let end = Instant::now();
            self.elapsed += end - start;
            self.iters += 1;
            if end >= deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<44} (no iterations recorded)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let rate = throughput.map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 * 1e9 / per_iter;
            format!("  ({per_sec:.3e} {unit}/s)")
        });
        println!(
            "{name:<44} {per_iter:>12.1} ns/iter  ({} iters){}",
            self.iters,
            rate.unwrap_or_default()
        );
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // ~120 ms of measured time per benchmark: five bench targets with
        // a handful of benchmarks each finish in seconds, not minutes.
        Self { budget: Duration::from_millis(120) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's loop is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&format!("{}/{name}", self.name), self.throughput);
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group function that runs each target, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("example/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(8)).sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 8], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs_and_records_iterations() {
        benches();
        let mut b = Bencher::new(Duration::from_millis(1));
        b.iter(|| black_box(1 + 1));
        assert!(b.iters > 0);
    }
}
