//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate reimplements the subset of the proptest API the reproduction's
//! property tests use: the [`proptest!`] macro, range/`Just`/tuple
//! strategies, `prop_map`, `prop_oneof!`, `prop::collection::{vec,
//! btree_set}`, `prop::array::{uniform8, uniform32}`, `any::<T>()`, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index in
//!   the panic message instead of a minimized input.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name (overridable with the `PROPTEST_SEED`
//!   environment variable), so failures reproduce exactly across runs
//!   and machines.

use std::rc::Rc;

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_value(rng)
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn gen_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Whole-domain: raw bit patterns, NaNs and infinities included
            // (mirrors proptest's f64::ANY spirit).
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy for the full domain of `T` (returned by `any`).
    #[derive(Clone, Debug, Default)]
    pub struct AnyOf<T>(std::marker::PhantomData<T>);

    impl<T> AnyOf<T> {
        /// Creates the strategy.
        pub const fn new() -> Self {
            Self(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyOf<T> {
        AnyOf::new()
    }

    /// `prop::collection::vec` and friends.
    pub mod collection {
        use super::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::{Range, RangeInclusive};

        /// Collection size specification (mirrors `proptest::collection::
        /// SizeRange`): a fixed length or a range of lengths.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            /// Inclusive lower bound.
            pub lo: usize,
            /// Exclusive upper bound.
            pub hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                Self { lo: r.start, hi: r.end }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                let (lo, hi) = r.into_inner();
                Self { lo, hi: hi + 1 }
            }
        }

        impl SizeRange {
            fn draw(&self, rng: &mut TestRng) -> usize {
                let span = (self.hi - self.lo).max(1) as u64;
                self.lo + rng.below(span) as usize
            }
        }

        /// Vector of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }

        /// See [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.draw(rng);
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }
        }

        /// Set of up to `len` distinct `element` values (fewer if the
        /// element domain is small — same contract as proptest).
        pub fn btree_set<S>(element: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { element, len: len.into() }
        }

        /// See [`btree_set`].
        #[derive(Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.len.draw(rng);
                let mut set = BTreeSet::new();
                // Bounded attempts: small domains can't reach the target.
                for _ in 0..target.saturating_mul(4).max(8) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.gen_value(rng));
                }
                set
            }
        }
    }

    /// `prop::array::uniformN`.
    pub mod array {
        use super::{Strategy, TestRng};

        /// Fixed-size array strategy.
        #[derive(Clone)]
        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.0.gen_value(rng))
            }
        }

        /// Array of 8 values drawn from `s`.
        pub fn uniform8<S: Strategy>(s: S) -> UniformArray<S, 8> {
            UniformArray(s)
        }

        /// Array of 32 values drawn from `s`.
        pub fn uniform32<S: Strategy>(s: S) -> UniformArray<S, 32> {
            UniformArray(s)
        }
    }

    /// `prop::num`.
    pub mod num {
        /// Strategies over `f64`.
        pub mod f64 {
            /// Whole-domain `f64` strategy (NaNs included).
            pub const ANY: super::super::AnyOf<f64> = super::super::AnyOf::new();
        }
    }

    // Re-exported under the `prop::` paths tests spell out.
    pub use self::{array as prop_array, collection as prop_collection};

    /// Silences the unused-import warning for `BTreeSet` above.
    const _: fn() -> BTreeSet<u8> = BTreeSet::new;
}

pub mod test_runner {
    //! Test execution: configuration and the deterministic RNG.

    /// Failure type property-test bodies can `return Err(..)` with
    /// (mirrors `proptest::test_runner::TestCaseError`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    /// Per-test configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used by all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name (FNV-1a), XORed with
        /// `PROPTEST_SEED` when set, so failures replay exactly.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra;
                }
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                ((self.next_u64() as u128 * bound as u128) >> 64) as u64
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The `prop::` module path tests import via the prelude.
pub mod prop {
    pub use crate::strategy::array;
    pub use crate::strategy::collection;
    pub use crate::strategy::num;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                // Bodies may `return Ok(())` early, as with real proptest,
                // so each case runs as a `Result`-returning closure.
                let run = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Err(e) = run(&mut rng) {
                        panic!("test case rejected: {e:?}");
                    }
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest {}: case {}/{} failed (deterministic seed from test name{})",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        if std::env::var("PROPTEST_SEED").is_ok() {
                            " ^ PROPTEST_SEED"
                        } else {
                            ""
                        },
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

// Keep the `Rc` import honest (used via strategy::BoxedStrategy).
const _: fn(u8) -> Rc<u8> = Rc::new;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            x in 0u64..100,
            pair in (0usize..4, any::<bool>()),
            v in prop::collection::vec((0u8..10).prop_map(|b| b * 2), 1..20),
        ) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b % 2 == 0 && b < 20));
        }

        #[test]
        fn oneof_hits_every_arm(picks in prop::collection::vec(
            prop_oneof![Just(1u8), Just(2u8), Just(3u8)], 64..65,
        )) {
            for p in &picks {
                prop_assert!((1..=3).contains(p));
            }
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
