//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) subset of the `rand` 0.8 API the
//! reproduction uses: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. All randomness comes from a
//! deterministic SplitMix64 generator, which is a feature here: every
//! workload, matrix and trace in the repo is seeded, so runs are
//! bit-reproducible across machines.

use core::ops::{Range, RangeInclusive};

/// SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush on
/// 64-bit outputs; state advances by a Weyl constant so any seed works.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, bound)` (Lemire-style rejection is
    /// unnecessary at the bias levels simulation workloads care about;
    /// use the high-quality multiply-shift reduction).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Low-level generator interface (the subset of `rand_core::RngCore`
/// the workspace needs).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let mut g = ShimRng(rng);
                self.start + g.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let mut g = ShimRng(rng);
                if span == 0 {
                    // Full u64 domain.
                    return g.0.next_u64() as $t;
                }
                lo + g.below(span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

/// Internal adapter giving `SampleRange` impls a bounded-draw helper.
struct ShimRng<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> ShimRng<'_, R> {
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((self.0.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Uniform value of an inferable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng` for the seeding style the repo uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(SplitMix64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(SplitMix64::new(seed))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small-footprint alias (the shim has only one engine).
    pub type SmallRng = StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = rng.gen_range(0.1f64..10.0);
            assert!((0.1..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 64 elements should not be identity");
    }
}
