//! Telemetry run reports for the paper's two headline workloads.
//!
//! Runs the §5.1 fork/checkpoint experiment and the Figure 10 SpMV
//! kernel with an active [`TelemetrySink`], then prints a per-layer CPI
//! stack, the metrics registry, and the journal summary for each.
//! A third report, `soak`, replays a seeded churn stream through the
//! differential harness and summarizes fragmentation and §4.4.2
//! compaction activity from the telemetry gauges and counters.
//! Optionally exports the raw telemetry next to the report.
//!
//! ```text
//! po_report [--workload fork|spmv|soak|all] [--out DIR]
//!           [--spec NAME] [--warmup N] [--post N] [--seed N]
//! ```
//!
//! * `--workload` — which report(s) to produce (default `all`).
//! * `--out` — directory to write `<workload>.trace.json` (Chrome
//!   `trace_event` format, loadable in `chrome://tracing`/Perfetto) and
//!   `<workload>.events.jsonl` (the cycle-stamped event journal).
//! * `--spec` — fork workload from the SPEC-like suite (default `mcf`,
//!   a Type 3 sparse writer).
//! * `--warmup` / `--post` — instruction budget before/after the fork
//!   (defaults 40 000 / 60 000).
//! * `--seed` — workload generator seed (default 42).
//!
//! Everything here is deterministic: same arguments, byte-identical
//! reports and exports.
//!
//! [`TelemetrySink`]: page_overlays::telemetry::TelemetrySink

use page_overlays::sim::{generate_soak_ops, run_job, SystemConfig, WorkloadJob};
use page_overlays::sparse::gen as matrix_gen;
use page_overlays::sparse::{CsrMatrix, OverlayMatrix, TimedSpmv};
use page_overlays::telemetry::TelemetrySink;
use page_overlays::workloads::spec_suite;
use std::path::Path;
use std::process::ExitCode;

/// Journal/span capacity for report runs: large enough that the CPI
/// stack aggregates every access, with the journal ring bounding memory.
const REPORT_CAPACITY: usize = 65_536;

struct Options {
    workload: String,
    out: Option<String>,
    spec: String,
    warmup: u64,
    post: u64,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workload: "all".to_string(),
        out: None,
        spec: "mcf".to_string(),
        warmup: 40_000,
        post: 60_000,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--workload" => opts.workload = value("--workload")?,
            "--out" => opts.out = Some(value("--out")?),
            "--spec" => opts.spec = value("--spec")?,
            "--warmup" => {
                opts.warmup = value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
            }
            "--post" => {
                opts.post = value("--post")?.parse().map_err(|e| format!("--post: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("unknown argument {other} (see the module docs)")),
        }
    }
    if !matches!(opts.workload.as_str(), "fork" | "spmv" | "soak" | "all") {
        return Err(format!("--workload must be fork, spmv, soak, or all, not {}", opts.workload));
    }
    Ok(opts)
}

/// Writes the Chrome trace and event journal under `dir`.
fn export(sink: &TelemetrySink, dir: &str, tag: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let trace = Path::new(dir).join(format!("{tag}.trace.json"));
    std::fs::write(&trace, sink.chrome_trace_json())?;
    println!("Chrome trace written to {}", trace.display());
    let events = Path::new(dir).join(format!("{tag}.events.jsonl"));
    std::fs::write(&events, sink.journal_jsonl())?;
    println!("event journal written to {}", events.display());
    Ok(())
}

fn fork_report(opts: &Options) -> Result<(), String> {
    let spec = spec_suite()
        .into_iter()
        .find(|s| s.name == opts.spec)
        .ok_or_else(|| format!("no workload named {} in the SPEC-like suite", opts.spec))?;
    let job = WorkloadJob::fork(
        0,
        format!("fork/{} (overlay-on-write)", spec.name),
        SystemConfig::table2_overlay(),
        spec.base_vpn(),
        spec.mapped_pages(opts.warmup.max(opts.post)),
        spec.generate_warmup(opts.warmup, opts.seed),
        spec.generate_post_fork(opts.post, opts.seed),
    )
    .with_seed(opts.seed)
    .with_telemetry(REPORT_CAPACITY);
    let run = run_job(job).map_err(|e| format!("fork experiment failed: {e:?}"))?;
    let result = run.outcome.as_fork().expect("fork job outcome");

    print!("{}", run.telemetry.run_report(&run.label));
    println!(
        "\npost-fork CPI {:.3}, extra memory {} B, overlay bytes {} B, OMT cache hit rate {:.3}\n",
        result.cpi, result.extra_memory_bytes, result.overlay_bytes, result.omt_cache_hit_rate
    );
    if let Some(dir) = &opts.out {
        export(&run.telemetry, dir, "fork").map_err(|e| format!("export failed: {e}"))?;
    }
    Ok(())
}

fn spmv_report(opts: &Options) -> Result<(), String> {
    // A clustered matrix with high line locality — the regime where the
    // overlay representation beats CSR (Figure 10, high L).
    let triplets = matrix_gen::clustered(40, 512, 20_000, 8, true, opts.seed);
    let csr = CsrMatrix::from_triplets(&triplets);
    let ovl = OverlayMatrix::from_triplets(&triplets);

    let sink = TelemetrySink::with_capacity(REPORT_CAPACITY, REPORT_CAPACITY);
    let timed = TimedSpmv::new(SystemConfig::table2_overlay()).with_telemetry(sink.clone());
    let timing = timed.time_overlay(&ovl).map_err(|e| format!("overlay SpMV failed: {e:?}"))?;
    let csr_timing = TimedSpmv::new(SystemConfig::table2_overlay())
        .time_csr(&csr)
        .map_err(|e| format!("CSR SpMV failed: {e:?}"))?;

    print!(
        "{}",
        sink.run_report(&format!("SpMV overlay representation (L = {:.1})", ovl.locality()))
    );
    println!(
        "\noverlay: {} cycles, CPI {:.3}, {} B; CSR: {} cycles, CPI {:.3}, {} B\n",
        timing.cycles,
        timing.cpi(),
        timing.memory_bytes,
        csr_timing.cycles,
        csr_timing.cpi(),
        csr_timing.memory_bytes
    );
    if let Some(dir) = &opts.out {
        export(&sink, dir, "spmv").map_err(|e| format!("export failed: {e}"))?;
    }
    Ok(())
}

/// Ops per soak-report churn stream — matches the `po_soak` default.
const SOAK_OPS: usize = 2000;
/// End-of-run fragmentation ceiling — matches the `po_soak` default.
const SOAK_FRAG_CEILING: f64 = 0.9;

fn soak_report(opts: &Options) -> Result<(), String> {
    let job = WorkloadJob::soak(
        0,
        "soak churn (overlay-on-write)".to_string(),
        SystemConfig::table2_overlay(),
        generate_soak_ops(opts.seed, SOAK_OPS),
        SOAK_FRAG_CEILING,
    )
    .with_seed(opts.seed)
    .with_telemetry(REPORT_CAPACITY);
    let run = run_job(job).map_err(|e| format!("soak churn failed: {e:?}"))?;
    let soak = run.outcome.as_soak().expect("soak job outcome");
    soak.verdict.as_ref().map_err(|e| format!("soak verdict: {e}"))?;

    print!("{}", run.telemetry.run_report(&run.label));
    // The summary line reads the same gauges and counters the manager
    // emits into the journal ("oms.fragmentation_pmille" after each
    // compaction pass, the pass/byte counters from the store), so the
    // printed numbers are checkable against an `--out` export.
    let frag_pmille = run
        .telemetry
        .metrics()
        .and_then(|m| m.gauge_value("oms.fragmentation_pmille"))
        .unwrap_or(0);
    println!(
        "\nsoak: {} ops, {} live procs, {} B overlay; compaction: {} passes, {} B relocated, \
         fragmentation {:.3} final ({} ‰ at last pass, ceiling {:.3})\n",
        soak.ops_applied,
        soak.procs,
        soak.overlay_bytes,
        run.telemetry.counter("oms.compaction_passes"),
        run.telemetry.counter("oms.relocated_bytes"),
        soak.final_fragmentation,
        frag_pmille,
        SOAK_FRAG_CEILING,
    );
    if let Some(dir) = &opts.out {
        export(&run.telemetry, dir, "soak").map_err(|e| format!("export failed: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("po_report: {e}");
            return ExitCode::from(2);
        }
    };
    let run = |r: Result<(), String>| match r {
        Ok(()) => true,
        Err(e) => {
            eprintln!("po_report: {e}");
            false
        }
    };
    let mut ok = true;
    if matches!(opts.workload.as_str(), "fork" | "all") {
        ok &= run(fork_report(&opts));
    }
    if matches!(opts.workload.as_str(), "spmv" | "all") {
        ok &= run(spmv_report(&opts));
    }
    if matches!(opts.workload.as_str(), "soak" | "all") {
        ok &= run(soak_report(&opts));
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
