//! Differential fuzzer for the page-overlay machine.
//!
//! Generates seeded op streams (maps, pokes/peeks, forks, overlay
//! commits/discards/flushes/reclaims, timed loads/stores), runs each
//! against the machine and the byte-level [`DiffOracle`], and — on
//! divergence — shrinks the stream to a locally minimal trace and
//! writes it as a replayable trace file.
//!
//! ```text
//! diff_fuzz [--seed N] [--runs N] [--ops N] [--cow] [--faults]
//!           [--inject-bug] [--out PATH]
//! ```
//!
//! * `--seed` — first stream seed (default 1; run `i` uses `seed + i`).
//! * `--runs` — streams to try (default 20).
//! * `--ops` — ops per stream (default 400).
//! * `--cow` — fuzz the copy-on-write baseline instead of overlay mode.
//! * `--faults` — install a PR-1 style fault plan (OMS allocation
//!   failures, grow refusals, frame exhaustion) seeded per run.
//! * `--inject-bug` — enable the deliberate test-only divergence (a
//!   poke of `0x42` writes `0x43`): the fuzzer must catch it.
//! * `--out` — where to write the shrunk failing trace
//!   (default `diff_fuzz_failure.trace`).
//!
//! Exits 0 if every run converges, 1 on divergence (after writing the
//! shrunk trace and, next to it, `<out>.events.jsonl` — the last 256
//! telemetry events of the minimal failing replay), 2 on usage errors.
//!
//! [`DiffOracle`]: page_overlays::sim::DiffOracle

use page_overlays::sim::{
    generate_ops, run_ops, run_ops_traced, shrink_ops, write_trace_with_seed, SystemConfig,
};
use page_overlays::types::{FaultPlan, FaultSite};
use std::process::ExitCode;

struct Options {
    seed: u64,
    runs: u64,
    ops: usize,
    cow: bool,
    faults: bool,
    inject_bug: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 1,
        runs: 20,
        ops: 400,
        cow: false,
        faults: false,
        inject_bug: false,
        out: "diff_fuzz_failure.trace".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--runs" => opts.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--ops" => opts.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--cow" => opts.cow = true,
            "--faults" => opts.faults = true,
            "--inject-bug" => opts.inject_bug = true,
            "--out" => opts.out = value("--out")?,
            other => return Err(format!("unknown argument {other} (see the module docs)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("diff_fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    let config = if opts.cow { SystemConfig::table2() } else { SystemConfig::table2_overlay() };

    for i in 0..opts.runs {
        let seed = opts.seed.wrapping_add(i);
        let ops = generate_ops(seed, opts.ops);
        let plan = opts.faults.then(|| {
            FaultPlan::new(seed ^ 0xFA17)
                .with_probability(FaultSite::OmsAllocFailed, 0.05)
                .with_probability(FaultSite::OmsGrowRefused, 0.05)
                .with_probability(FaultSite::FrameAllocExhausted, 0.02)
        });
        match run_ops(&config, plan.as_ref(), &ops, opts.inject_bug) {
            Ok(()) => println!("seed {seed}: ok ({} ops)", ops.len()),
            Err(e) => {
                println!("seed {seed}: DIVERGENCE — {e}");
                let shrunk = shrink_ops(&config, plan.as_ref(), &ops, opts.inject_bug);
                println!("shrunk {} ops -> {} ops", ops.len(), shrunk.len());
                let file = match std::fs::File::create(&opts.out) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("diff_fuzz: cannot create {}: {e}", opts.out);
                        return ExitCode::from(2);
                    }
                };
                if let Err(e) = write_trace_with_seed(file, &shrunk, Some(seed)) {
                    eprintln!("diff_fuzz: cannot write {}: {e}", opts.out);
                    return ExitCode::from(2);
                }
                println!("minimal failing trace written to {}", opts.out);
                // Replay the minimal trace with telemetry armed and dump
                // the event tail: what the machine was doing as it broke.
                if let Err((_, tail)) =
                    run_ops_traced(&config, plan.as_ref(), &shrunk, opts.inject_bug)
                {
                    if tail.is_empty() {
                        // A fully-shrunk trace can be purely functional
                        // (spawn/map/poke) and never touch a timed,
                        // event-emitting path.
                        println!("no telemetry events in the minimal replay (functional ops only)");
                    } else {
                        let events_out = format!("{}.events.jsonl", opts.out);
                        match std::fs::write(&events_out, tail) {
                            Ok(()) => println!("event tail written to {events_out}"),
                            Err(e) => eprintln!("diff_fuzz: cannot write {events_out}: {e}"),
                        }
                    }
                }
                return ExitCode::from(1);
            }
        }
    }
    println!("{} runs converged", opts.runs);
    ExitCode::SUCCESS
}
