//! Differential fuzzer for the page-overlay machine.
//!
//! Generates seeded op streams (maps, pokes/peeks, forks, overlay
//! commits/discards/flushes/reclaims, timed loads/stores), runs each
//! against the machine and the byte-level [`DiffOracle`], and — on
//! divergence — shrinks the stream to a locally minimal trace and
//! writes it as a replayable trace file.
//!
//! Shrinking is coupled to the `po_analyze` abstract verifier: delta
//! debugging discards any candidate the verifier proves degenerate
//! (ops that are provably dead or must fail — PA-V001/PA-V002), so the
//! expensive differential replay is never spent on noise and the
//! emitted minimal trace carries no dead weight. The final trace is
//! verified once more before it is written; a rejection there is an
//! internal error, not a fuzzing result.
//!
//! ```text
//! diff_fuzz [--seed N] [--runs N] [--ops N] [--cores N] [--cow]
//!           [--backend overlay|seg] [--faults] [--inject-bug]
//!           [--spec] [--out PATH]
//! ```
//!
//! * `--seed` — first stream seed (default 1; run `i` uses `seed + i`).
//! * `--runs` — streams to try (default 20).
//! * `--ops` — ops per stream (default 400).
//! * `--cores` — cores on the fuzzed machine (default 1). With more
//!   than one, streams carry `OnCore` directives so timed ops hop
//!   between cores and the §4.3.3 coherence paths are in play.
//! * `--cow` — fuzz the copy-on-write baseline instead of overlay mode.
//! * `--backend` — address-translation backend to fuzz (default
//!   `overlay`). A backend without overlay support (`seg`) degrades
//!   every shared-page store to classic CoW; the byte oracle, the
//!   invariant sweep, and the refinement spec all follow suit.
//! * `--faults` — install a PR-1 style fault plan (OMS allocation
//!   failures, grow refusals, frame exhaustion) seeded per run.
//! * `--inject-bug` — enable the deliberate test-only divergence (a
//!   poke of `0x42` writes `0x43`): the fuzzer must catch it.
//! * `--spec` — run the spec-refinement positive control first: a
//!   machine that skips one OMS free must be caught by the refinement
//!   oracle (the executable spec every run steps in lockstep anyway).
//!   CI's `refinement` job passes this flag.
//! * `--race` — run the seeded-race positive control first: a machine
//!   that delivers one remote OBitVector update without annotating it
//!   must be caught by the PA-C happens-before verifier — and by
//!   *nothing else* (the byte oracle, the invariant sweep, and the
//!   refinement spec all stay green, because the functional TLB patch
//!   still lands). The witness is ddmin-shrunk under the "PA-C001
//!   still fires" predicate and written next to `--out` as
//!   `<out>.race.trace`. CI's `race-analyze` job passes this flag.
//! * `--out` — where to write the shrunk failing trace
//!   (default `diff_fuzz_failure.trace`).
//!
//! With `--cores` above 1, every converged stream — and any shrunk
//! divergence witness — is additionally replayed through the PA-C
//! concurrency verifier; a finding there fails the run even when the
//! byte oracle agrees.
//!
//! Exits 0 if every run converges, 1 on divergence (after writing the
//! shrunk trace and, next to it, `<out>.events.jsonl` — the last 256
//! telemetry events of the minimal failing replay), 2 on usage errors.
//!
//! [`DiffOracle`]: page_overlays::sim::DiffOracle

use page_overlays::analyze::verifier::{analyze_jsonl, replay_and_analyze, replay_events_jsonl};
use page_overlays::analyze::{self, Verdict, VerifierOptions};
use page_overlays::sim::{
    generate_mc_ops, run_ops, run_ops_traced, shrink_by, shrink_ops_filtered,
    write_trace_with_seed, BackendKind, SimHarness, SystemConfig, TraceOp, VPN_BASE,
};
use page_overlays::types::VirtAddr;
use page_overlays::types::{FaultPlan, FaultSite};
use std::process::ExitCode;

struct Options {
    seed: u64,
    runs: u64,
    ops: usize,
    cores: usize,
    cow: bool,
    backend: BackendKind,
    faults: bool,
    inject_bug: bool,
    spec: bool,
    race: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 1,
        runs: 20,
        ops: 400,
        cores: 1,
        cow: false,
        backend: BackendKind::Overlay,
        faults: false,
        inject_bug: false,
        spec: false,
        race: false,
        out: "diff_fuzz_failure.trace".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--runs" => opts.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--ops" => opts.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--cores" => {
                opts.cores = value("--cores")?.parse().map_err(|e| format!("--cores: {e}"))?;
                if opts.cores == 0 {
                    return Err("--cores must be at least 1".into());
                }
            }
            "--cow" => opts.cow = true,
            "--backend" => {
                opts.backend = value("--backend")?.parse().map_err(|e| format!("--backend: {e}"))?
            }
            "--faults" => opts.faults = true,
            "--inject-bug" => opts.inject_bug = true,
            "--spec" => opts.spec = true,
            "--race" => opts.race = true,
            "--out" => opts.out = value("--out")?,
            other => return Err(format!("unknown argument {other} (see the module docs)")),
        }
    }
    Ok(opts)
}

/// Positive control for the refinement oracle: arm the one-shot
/// OMS-free skip, drive a minimal overlay lifecycle, and demand that
/// the *spec* (not the byte oracle or an internal invariant sweep)
/// calls the leak out at the discard.
fn refinement_canary() -> Result<(), String> {
    // po-analyze: allow(PA-L005) — 5-op positive control needing a test-only hook
    let mut h = SimHarness::new(SystemConfig::table2_overlay())
        .map_err(|e| format!("harness construction failed: {e:?}"))?;
    h.machine.set_inject_oms_leak(true);
    let ops = [
        TraceOp::Spawn,
        TraceOp::Map { proc_sel: 0, start: VPN_BASE, count: 1 },
        TraceOp::Fork { proc_sel: 0 },
        TraceOp::SeedLine { proc_sel: 0, vpn: VPN_BASE, line: 0, value: 0xAB },
        TraceOp::DiscardPage { proc_sel: 0, vpn: VPN_BASE },
    ];
    for op in &ops {
        match h.apply(op) {
            Ok(()) => {}
            Err(e) if e.contains("spec refinement violated") => return Ok(()),
            Err(e) => return Err(format!("the canary tripped the wrong check: {e}")),
        }
    }
    Err("the skipped OMS free went undetected by the refinement oracle".into())
}

/// Positive control for the concurrency verifier: arm the one-shot
/// suppressed remote OBitVector-update annotation, drive the §4.3.3
/// remote-update pattern across two cores under a generated multi-core
/// tail, and demand that PA-C001 — and *only* the happens-before
/// analysis — calls out the deleted synchronization edge. The replay
/// itself runs the byte oracle, the invariant sweep, and the
/// refinement spec in lockstep, so a clean journal return already
/// proves every functional check stayed green. The witness is then
/// ddmin-shrunk under the "PA-C001 still fires" predicate and written
/// as a replayable trace.
fn race_canary(out: &str) -> Result<(), String> {
    let config = SystemConfig { cores: 2, ..SystemConfig::table2_overlay() };
    // Deterministic victim pattern: core 1 caches the page, core 0's
    // overlaying store broadcasts the single-line update (suppressed by
    // the canary), core 1 reads the line it never saw created.
    let mut ops = vec![
        TraceOp::Spawn,
        TraceOp::Map { proc_sel: 0, start: VPN_BASE, count: 2 },
        TraceOp::Fork { proc_sel: 0 },
        TraceOp::OnCore { core_sel: 1 },
        TraceOp::Load(VirtAddr::new(VPN_BASE << 12)),
        TraceOp::OnCore { core_sel: 0 },
        TraceOp::Store(VirtAddr::new(VPN_BASE << 12)),
        TraceOp::OnCore { core_sel: 1 },
        TraceOp::Load(VirtAddr::new(VPN_BASE << 12)),
    ];
    // A generated tail gives the shrinker real work.
    ops.extend(generate_mc_ops(0xCA9A87, 80, 2));

    // Negative control: unarmed, the same stream must be PA-C clean.
    let control = replay_and_analyze(&config, &ops, "<race-control>")
        .map_err(|e| format!("the unarmed control replay failed: {e}"))?;
    if !control.findings.is_empty() {
        return Err(format!(
            "the unarmed control replay is not PA-C clean:\n{}",
            control.to_human()
        ));
    }

    // Armed: functional oracles stay green (a replay error here means
    // the canary tripped the wrong check), PA-C001 must fire.
    let armed_race = |cand: &[TraceOp]| {
        replay_events_jsonl(&config, cand, true)
            .map(|journal| {
                analyze_jsonl(&journal, "<race-canary>")
                    .findings
                    .iter()
                    .any(|f| f.rule == "PA-C001")
            })
            .unwrap_or(false)
    };
    let journal = replay_events_jsonl(&config, &ops, true)
        .map_err(|e| format!("the canary tripped a functional oracle: {e}"))?;
    let report = analyze_jsonl(&journal, "<race-canary>");
    if !report.findings.iter().any(|f| f.rule == "PA-C001") {
        return Err("the suppressed update annotation went undetected by PA-C001".into());
    }

    let shrunk = shrink_by(&ops, armed_race);
    println!("race canary: shrunk {} ops -> {} ops", ops.len(), shrunk.len());
    let mut bytes = Vec::new();
    write_trace_with_seed(&mut bytes, &shrunk, None)
        .map_err(|e| format!("cannot serialize the shrunk race witness: {e}"))?;
    let race_out = format!("{out}.race.trace");
    std::fs::write(&race_out, &bytes).map_err(|e| format!("cannot write {race_out}: {e}"))?;
    println!("minimal race witness written to {race_out}");
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("diff_fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    let base = if opts.cow { SystemConfig::table2() } else { SystemConfig::table2_overlay() };
    let config = SystemConfig { cores: opts.cores, backend: opts.backend, ..base };

    if opts.spec {
        match refinement_canary() {
            Ok(()) => println!("spec refinement positive control: leak caught"),
            Err(e) => {
                eprintln!("diff_fuzz: spec refinement positive control FAILED — {e}");
                return ExitCode::from(1);
            }
        }
    }

    if opts.race {
        match race_canary(&opts.out) {
            Ok(()) => println!("race positive control: lost update caught by PA-C001 alone"),
            Err(e) => {
                eprintln!("diff_fuzz: race positive control FAILED — {e}");
                return ExitCode::from(1);
            }
        }
    }

    for i in 0..opts.runs {
        let seed = opts.seed.wrapping_add(i);
        let ops = generate_mc_ops(seed, opts.ops, opts.cores);
        let plan = opts.faults.then(|| {
            FaultPlan::new(seed ^ 0xFA17)
                .with_probability(FaultSite::OmsAllocFailed, 0.05)
                .with_probability(FaultSite::OmsGrowRefused, 0.05)
                .with_probability(FaultSite::FrameAllocExhausted, 0.02)
        });
        match run_ops(&config, plan.as_ref(), &ops, opts.inject_bug) {
            Ok(()) if opts.cores > 1 => {
                // The byte oracle agrees — now the coherence annotation
                // stream must also carry a race-free happens-before
                // order. (The replay runs on a clean machine: fault
                // plans perturb scheduling, not the HB requirement.)
                match replay_and_analyze(&config, &ops, &format!("seed {seed}")) {
                    Ok(report) if report.findings.is_empty() => {
                        println!("seed {seed}: ok ({} ops, PA-C clean)", ops.len());
                    }
                    Ok(report) => {
                        eprintln!(
                            "diff_fuzz: seed {seed} converged but the concurrency verifier \
                             found:\n{}",
                            report.to_human()
                        );
                        return ExitCode::from(1);
                    }
                    Err(e) => {
                        eprintln!("diff_fuzz: seed {seed} PA-C replay failed — {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            Ok(()) => println!("seed {seed}: ok ({} ops)", ops.len()),
            Err(e) => {
                println!("seed {seed}: DIVERGENCE — {e}");
                // Delta debugging, with the abstract verifier as a
                // pre-filter: a candidate containing an op the verifier
                // proves dead or must-fail (PA-V001/PA-V002) is noise —
                // skip the replay and never let it become the result.
                // Under --faults nothing is provable, so the filter is
                // vacuously permissive (assume_faults degrades it).
                let vopts = VerifierOptions { assume_faults: opts.faults, ..Default::default() };
                let clean = |cand: &[TraceOp]| {
                    !analyze::verify_ops(&config, cand, &vopts, "<candidate>")
                        .report
                        .findings
                        .iter()
                        .any(|f| f.rule == "PA-V001" || f.rule == "PA-V002")
                };
                let shrunk =
                    shrink_ops_filtered(&config, plan.as_ref(), &ops, opts.inject_bug, clean);
                println!("shrunk {} ops -> {} ops", ops.len(), shrunk.len());
                // Serialize, then verify the exact bytes about to land
                // on disk: the artifact must parse and replay.
                let mut bytes = Vec::new();
                if let Err(e) = write_trace_with_seed(&mut bytes, &shrunk, Some(seed)) {
                    eprintln!("diff_fuzz: cannot serialize the shrunk trace: {e}");
                    return ExitCode::from(2);
                }
                let text = String::from_utf8_lossy(&bytes);
                let analysis = analyze::verify_trace_text(&config, &text, &vopts, &opts.out);
                if analysis.verdict == Verdict::Reject {
                    eprintln!(
                        "diff_fuzz: internal error — the shrunk trace does not verify:\n{}",
                        analysis.report.to_human()
                    );
                    return ExitCode::from(2);
                }
                if !analysis.report.findings.is_empty() {
                    println!(
                        "verifier notes on the minimal trace:\n{}",
                        analysis.report.to_human()
                    );
                }
                if let Err(e) = std::fs::write(&opts.out, &bytes) {
                    eprintln!("diff_fuzz: cannot write {}: {e}", opts.out);
                    return ExitCode::from(2);
                }
                println!("minimal failing trace written to {} (verifier-checked)", opts.out);
                // Replay the minimal trace with telemetry armed and dump
                // the event tail: what the machine was doing as it broke.
                if let Err((_, tail)) =
                    run_ops_traced(&config, plan.as_ref(), &shrunk, opts.inject_bug)
                {
                    if tail.is_empty() {
                        // A fully-shrunk trace can be purely functional
                        // (spawn/map/poke) and never touch a timed,
                        // event-emitting path.
                        println!("no telemetry events in the minimal replay (functional ops only)");
                    } else {
                        let events_out = format!("{}.events.jsonl", opts.out);
                        match std::fs::write(&events_out, tail) {
                            Ok(()) => println!("event tail written to {events_out}"),
                            Err(e) => eprintln!("diff_fuzz: cannot write {events_out}: {e}"),
                        }
                    }
                }
                return ExitCode::from(1);
            }
        }
    }
    println!("{} runs converged", opts.runs);
    ExitCode::SUCCESS
}
