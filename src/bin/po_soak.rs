//! Sustained-pressure soak/chaos driver for the page-overlay machine.
//!
//! Drives seeded churn workloads ([`generate_soak_ops`]: fork-heavy
//! process churn, thousands of overlay seed → flush → commit/discard
//! cycles) through the full differential harness — byte oracle, spec
//! refinement, and machine invariants checked after every op — then
//! judges the end state against a fragmentation ceiling. With
//! `--faults`, every run also carries a PR-1 style fault plan (OMS
//! allocation failures, grow refusals, frame exhaustion), so the
//! §4.4.2 degradation ladder (reclaim → compact → grow) is exercised
//! under injected pressure, not just organic churn.
//!
//! ```text
//! po_soak [--seed N] [--runs N] [--ops N] [--faults]
//!         [--frag-ceiling F] [--events PATH]
//! ```
//!
//! * `--seed` — first run seed (default 1; run `i` uses `seed + i`).
//! * `--runs` — soak runs to drive (default 8).
//! * `--ops` — churn ops per run (default 2000).
//! * `--faults` — install a per-run PR-1 fault plan.
//! * `--frag-ceiling` — maximum tolerated end-of-run OMS fragmentation
//!   ratio, 0.0–1.0 (default 0.9: soak streams end mid-churn, so some
//!   fragmentation is expected; compaction must keep it off the wall).
//! * `--events PATH` — write the merged telemetry journal of all runs
//!   as JSONL (deterministic: two identical invocations produce
//!   byte-identical files).
//!
//! Every run is an independent [`WorkloadJob`], so the report is
//! deterministic for a given flag set. Exits 0 when every run is
//! clean, 1 on any finding, 2 on usage errors.
//!
//! [`generate_soak_ops`]: page_overlays::sim::generate_soak_ops
//! [`WorkloadJob`]: page_overlays::sim::WorkloadJob

use page_overlays::sim::{generate_soak_ops, run_job, SystemConfig, WorkloadJob};
use page_overlays::telemetry::TelemetryMerge;
use page_overlays::types::{FaultPlan, FaultSite};
use std::process::ExitCode;

/// Journal/span ring capacity per soak run: big enough to keep every
/// compaction and fault event of a default run, small enough to merge.
const EVENT_CAPACITY: usize = 4096;

struct Options {
    seed: u64,
    runs: u64,
    ops: usize,
    faults: bool,
    frag_ceiling: f64,
    events: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts =
        Options { seed: 1, runs: 8, ops: 2000, faults: false, frag_ceiling: 0.9, events: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--runs" => opts.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--ops" => opts.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--faults" => opts.faults = true,
            "--frag-ceiling" => {
                opts.frag_ceiling =
                    value("--frag-ceiling")?.parse().map_err(|e| format!("--frag-ceiling: {e}"))?;
                if !(0.0..=1.0).contains(&opts.frag_ceiling) {
                    return Err("--frag-ceiling must be within 0.0..=1.0".into());
                }
            }
            "--events" => opts.events = Some(value("--events")?),
            other => return Err(format!("unknown argument {other} (see the module docs)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("po_soak: {e}");
            return ExitCode::from(2);
        }
    };

    let mut merge = TelemetryMerge::new();
    let mut failures = 0u64;
    let mut total_passes = 0u64;
    let mut total_relocated = 0u64;
    let mut peak_frag = 0.0f64;
    for i in 0..opts.runs {
        let seed = opts.seed + i;
        let ops = generate_soak_ops(seed, opts.ops);
        let mut job = WorkloadJob::soak(
            i,
            format!("soak-{seed}"),
            SystemConfig::table2_overlay(),
            ops,
            opts.frag_ceiling,
        )
        .with_seed(seed)
        .with_telemetry(EVENT_CAPACITY);
        if opts.faults {
            job = job.with_fault_plan(
                FaultPlan::new(seed ^ 0xFA17)
                    .with_probability(FaultSite::OmsAllocFailed, 0.05)
                    .with_probability(FaultSite::OmsGrowRefused, 0.05)
                    .with_probability(FaultSite::FrameAllocExhausted, 0.02),
            );
        }
        let result = match run_job(job) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("po_soak: run {i} (seed {seed}) died: {e:?}");
                return ExitCode::from(1);
            }
        };
        merge.absorb(result.id, &result.telemetry);
        // Statically infallible: a Soak job always yields a Soak outcome.
        let Some(soak) = result.outcome.as_soak() else {
            eprintln!("po_soak: run {i} returned a non-soak outcome");
            return ExitCode::from(1);
        };
        total_passes += soak.compaction_passes;
        total_relocated += soak.relocated_bytes;
        peak_frag = peak_frag.max(soak.final_fragmentation);
        let verdict = match &soak.verdict {
            Ok(()) => "ok".to_string(),
            Err(e) => {
                failures += 1;
                format!("FAIL: {e}")
            }
        };
        println!(
            "soak run {i}: seed={seed} ops={} procs={} compactions={} relocated={} \
             frag={:.3} oms={} {verdict}",
            soak.ops_applied,
            soak.procs,
            soak.compaction_passes,
            soak.relocated_bytes,
            soak.final_fragmentation,
            soak.overlay_bytes,
        );
    }
    println!(
        "soak: {}/{} runs clean, {total_passes} compaction passes, {total_relocated} bytes \
         relocated, peak end-of-run frag {peak_frag:.3}",
        opts.runs - failures,
        opts.runs,
    );
    if let Some(path) = &opts.events {
        if let Err(e) = std::fs::write(path, merge.journal_jsonl()) {
            eprintln!("po_soak: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {} merged events to {path}", merge.journal().len());
    }
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
