//! # page-overlays — reproduction of the ISCA 2015 page-overlay framework
//!
//! A from-scratch Rust implementation of *"Page Overlays: An Enhanced
//! Virtual Memory Framework to Enable Fine-grained Memory Management"*
//! (Seshadri et al., ISCA 2015): the overlay framework itself, every
//! substrate its evaluation depends on (DDR3 DRAM, a three-level cache
//! hierarchy with DRRIP and stream prefetching, OBitVector-extended
//! TLBs, page tables and a fork/CoW OS model), the Table 2 timing
//! simulator, and all seven of the paper's application techniques.
//!
//! This crate is a facade: it re-exports each subsystem under a short
//! module name and surfaces the most commonly used types at the root.
//! See the README for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart: overlay-on-write vs copy-on-write
//!
//! ```
//! use page_overlays::sim::{Machine, SystemConfig};
//! use page_overlays::types::{VirtAddr, Vpn};
//!
//! // A Table 2 machine with overlay-on-write enabled.
//! let mut m = Machine::new(SystemConfig::table2_overlay())?;
//! let parent = m.spawn_process()?;
//! m.map_range(parent, Vpn::new(0x100), 4)?;
//! m.poke(parent, VirtAddr::new(0x100_000), 7)?;
//!
//! let child = m.fork(parent)?;
//! m.poke(parent, VirtAddr::new(0x100_000), 9)?; // one overlay line, no page copy
//! assert_eq!(m.peek(parent, VirtAddr::new(0x100_000))?, 9);
//! assert_eq!(m.peek(child, VirtAddr::new(0x100_000))?, 7);
//! assert_eq!(m.overlay().overlay_count(), 1);
//! # Ok::<(), page_overlays::types::PoError>(())
//! ```

/// Foundational types: addresses, OBitVector, line data, errors.
pub use po_types as types;

/// Deterministic tracing, metrics, and run reports (cycle-stamped event
/// journal, per-layer CPI stacks, JSONL/Chrome-trace exporters).
pub use po_telemetry as telemetry;

/// DDR3-1066 DRAM model and the functional data store.
pub use po_dram as dram;

/// Three-level cache hierarchy (LRU/DRRIP) and stream prefetcher.
pub use po_cache as cache;

/// Page tables, frame allocation, fork/copy-on-write OS model.
pub use po_vm as vm;

/// OBitVector-extended TLBs and shootdown-free coherence updates.
pub use po_tlb as tlb;

/// The page-overlay framework: OMT, OMT cache, Overlay Memory Store,
/// overlay manager (the paper's core contribution).
pub use po_overlay as overlay;

/// Pluggable address-translation backends: the [`AddressTranslation`]
/// trait, the canonical overlay backend, and its rivals
/// (`SystemConfig::backend` / `--backend` select one at run time).
///
/// [`AddressTranslation`]: po_xlate::AddressTranslation
pub use po_xlate as xlate;

/// The Table 2 timing simulator and the fork experiment.
pub use po_sim as sim;

/// The timing-free executable specification of VM+overlay semantics —
/// the refinement oracle the DST harness steps in lockstep.
pub use po_spec as spec;

/// Overlay-backed sparse data structures and the SpMV evaluation.
pub use po_sparse as sparse;

/// SPEC-like write-working-set workload generators.
pub use po_workloads as workloads;

/// The five additional §5.3 techniques (dedup, checkpointing,
/// speculation, shadow metadata, flexible super-pages).
pub use po_techniques as techniques;

/// Static analysis: the abstract trace verifier and the project lints
/// behind the `po_analyze` binary.
pub use po_analyze as analyze;

pub use po_overlay::{OverlayConfig, OverlayManager};
pub use po_sim::{Machine, SystemConfig};
pub use po_types::{
    Asid, LineData, MainMemAddr, OBitVector, Opn, PhysAddr, PoError, PoResult, Ppn, VirtAddr, Vpn,
};
pub use po_xlate::BackendKind;
