//! Fine-grained deduplication of mostly-identical pages (§5.3.1) — the
//! Difference Engine scenario: many virtual machines booted from the
//! same guest image whose pages differ in a handful of cache lines.
//!
//! Run with: `cargo run --release --example dedup_vms`

use page_overlays::techniques::DifferenceEngine;
use page_overlays::types::{Asid, LineData, Opn, PoResult, Vpn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VMS: u64 = 8;
const PAGES_PER_VM: u64 = 32;

fn main() -> PoResult<()> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut engine = DifferenceEngine::new(48);

    // The "guest image": 32 template pages of pseudo-random content.
    let mut template = Vec::new();
    for p in 0..PAGES_PER_VM {
        let mut page = [LineData::zeroed(); 64];
        for (l, line) in page.iter_mut().enumerate() {
            *line = LineData::splat((p as u8).wrapping_mul(31).wrapping_add(l as u8));
        }
        template.push(page);
    }

    // Each VM's copy of each page differs in 0-3 cache lines (dirty
    // logs, timestamps, pointers).
    let mut originals = Vec::new();
    for vm in 0..VMS {
        for p in 0..PAGES_PER_VM {
            let mut page = template[p as usize];
            let diffs = rng.gen_range(0..=3);
            for _ in 0..diffs {
                let line = rng.gen_range(0..64usize);
                page[line] = LineData::splat(rng.gen());
            }
            let opn = Opn::encode(Asid::new(vm as u16 + 1), Vpn::new(p));
            engine.insert_page(opn, &page)?;
            originals.push((opn, page));
        }
    }

    // Every page reconstructs exactly.
    for (opn, page) in &originals {
        assert_eq!(&engine.read_page(*opn)?, page, "reconstruction mismatch");
    }

    let stats = engine.stats();
    println!("== difference-engine dedup across {VMS} VMs x {PAGES_PER_VM} pages ==");
    println!("pages inserted: {}", stats.pages_inserted);
    println!("base pages:     {}", stats.base_pages);
    println!("deduped pages:  {}", stats.pages_deduped);
    println!("delta lines:    {}", stats.delta_lines);
    println!(
        "memory: {} bytes vs {} naive ({:.0}% saved; Difference Engine reports ~50%)",
        engine.memory_bytes(),
        engine.naive_bytes(),
        (1.0 - engine.memory_bytes() as f64 / engine.naive_bytes() as f64) * 100.0
    );
    println!("\nall {} pages reconstruct bit-exactly ✓", originals.len());
    Ok(())
}
