//! Fault injection and graceful overlay reclaim under memory pressure
//! (DESIGN.md §7 "Fault model & degradation").
//!
//! Runs the same fork/overlay divergence workload twice — once clean,
//! once with the OS refusing every fourth-ish OMS grow chunk — and
//! shows that the faulted run degrades by collapsing cold overlays
//! back into physical pages instead of failing or corrupting data.
//!
//! Run with: `cargo run --release --example fault_reclaim`

use page_overlays::overlay::OverlayStats;
use page_overlays::sim::{Machine, SystemConfig};
use page_overlays::types::{Asid, FaultPlan, FaultSite, PoResult, VirtAddr, Vpn};

const BASE_VPN: u64 = 0x200;
const PAGES: u64 = 24;
const PAGE: u64 = 4096;
const LINE: u64 = 64;

fn run(plan: Option<FaultPlan>) -> PoResult<(Vec<u8>, Vec<u8>, OverlayStats)> {
    let mut config = SystemConfig::table2_overlay();
    // Grow the OMS one frame at a time so the OS gets asked often.
    config.overlay.oms_chunk_frames = 1;
    let mut m = Machine::new(config)?;
    if let Some(p) = plan {
        m.install_fault_plan(p);
    }
    let parent = m.spawn_process()?;
    m.map_range(parent, Vpn::new(BASE_VPN), PAGES)?;
    let va = |page: u64, line: u64| VirtAddr::new((BASE_VPN + page) * PAGE + line * LINE);
    for page in 0..PAGES {
        for line in 0..64 {
            m.poke(parent, va(page, line), (page * 7 + line * 13) as u8)?;
        }
    }
    let child = m.fork(parent)?;

    // Divergence rounds: each flush pushes dirty overlay lines into the
    // OMS — the grow requests (and refusals) happen there.
    for round in 0..6u64 {
        for page in 0..PAGES {
            for i in 0..8u64 {
                let line = (round * 8 + i) % 64;
                m.poke(parent, va(page, line), (0x80 + round * 16 + i) as u8)?;
            }
        }
        m.flush_overlays()?;
        m.verify_invariants()?;
    }

    let dump = |m: &Machine, asid: Asid| -> PoResult<Vec<u8>> {
        let mut out = Vec::with_capacity((PAGES * PAGE) as usize);
        for page in 0..PAGES {
            for byte in 0..PAGE {
                out.push(m.peek(asid, VirtAddr::new((BASE_VPN + page) * PAGE + byte))?);
            }
        }
        Ok(out)
    };
    Ok((dump(&m, parent)?, dump(&m, child)?, m.overlay_stats()))
}

fn main() -> PoResult<()> {
    let (p0, c0, clean) = run(None)?;
    let plan = FaultPlan::new(0xfa117).with_probability(FaultSite::OmsGrowRefused, 0.25);
    let (p1, c1, faulted) = run(Some(plan))?;

    println!("== graceful overlay reclaim under injected OMS grow refusals ==");
    println!("workload: {PAGES} pages, fork, 6 divergence rounds (48 lines/page)");
    println!();
    println!("                         clean    faulted (25% grow refusals)");
    println!(
        "injected faults     {:>10} {:>10}",
        clean.injected_faults.get(),
        faulted.injected_faults.get()
    );
    println!(
        "alloc retries       {:>10} {:>10}",
        clean.alloc_retries.get(),
        faulted.alloc_retries.get()
    );
    println!("reclaims            {:>10} {:>10}", clean.reclaims.get(), faulted.reclaims.get());
    println!(
        "reclaimed bytes     {:>10} {:>10}",
        clean.reclaim_freed_bytes.get(),
        faulted.reclaim_freed_bytes.get()
    );
    println!("overlay commits     {:>10} {:>10}", clean.commits.get(), faulted.commits.get());
    println!();
    assert_eq!(p0, p1, "parent data diverged under faults");
    assert_eq!(c0, c1, "child data diverged under faults");
    assert!(faulted.reclaims.get() > 0, "pressure path never ran");
    println!(
        "parent and child address spaces are bit-identical across runs \
         ({} bytes each) ✓",
        p0.len()
    );
    Ok(())
}
