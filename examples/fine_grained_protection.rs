//! Fine-grained metadata as word-granularity protection (§5.3.4).
//!
//! Demonstrates the overlay address space acting as shadow memory: a
//! taint tracker and a redzone-based buffer-overflow detector, both at
//! 8-byte word granularity, with metadata memory proportional to what
//! is actually tagged (not to the data footprint, as flat shadow memory
//! would be).
//!
//! Run with: `cargo run --release --example fine_grained_protection`

use page_overlays::techniques::{ShadowMemory, WordProtection};
use page_overlays::types::{PoError, PoResult, VirtAddr};

fn main() -> PoResult<()> {
    let mut shadow = ShadowMemory::new();

    // --- 1. Redzones around a heap allocation ------------------------
    println!("== redzone demo ==");
    let buf = 0x10_0000u64; // an 8-word "allocation"
    shadow.protect_word(VirtAddr::new(buf - 8), WordProtection::NoAccess)?;
    shadow.protect_word(VirtAddr::new(buf + 64), WordProtection::NoAccess)?;

    for i in 0..8u64 {
        shadow.checked_store(VirtAddr::new(buf + i * 8), i * 11)?;
    }
    println!("8 in-bounds stores OK");
    match shadow.checked_store(VirtAddr::new(buf + 64), 0xBAD) {
        Err(PoError::ProtectionViolation(va)) => {
            println!("overflowing store to {va} caught by the redzone ✓")
        }
        other => panic!("expected a protection violation, got {other:?}"),
    }

    // --- 2. Taint tracking -------------------------------------------
    println!("\n== taint demo ==");
    let input = VirtAddr::new(0x20_0000);
    let copy = VirtAddr::new(0x30_0000);
    let clean = VirtAddr::new(0x40_0000);
    shadow.store(input, 0x1234)?;
    shadow.metadata_store(input, 0x80)?; // taint bit
    shadow.store(clean, 0x5678)?;

    // A "copy" instruction propagates taint.
    let (v, t) = (shadow.load(input)?, shadow.metadata_load(input)?);
    shadow.store(copy, v)?;
    shadow.metadata_store(copy, t)?;

    println!("taint(input) = {:#x}", shadow.metadata_load(input)?);
    println!("taint(copy)  = {:#x} (propagated)", shadow.metadata_load(copy)?);
    println!("taint(clean) = {:#x}", shadow.metadata_load(clean)?);
    assert_eq!(shadow.metadata_load(copy)?, 0x80);
    assert_eq!(shadow.metadata_load(clean)?, 0);

    // --- 3. Cost ------------------------------------------------------
    // Only three pages carry any metadata; a flat shadow map for a
    // 1 GiB data space would be 128 MiB regardless.
    println!(
        "\noverlay shadow memory in use: {} bytes (flat shadow for 1 GiB of data: {} bytes)",
        shadow.metadata_memory_bytes(),
        ShadowMemory::flat_shadow_bytes(1 << 18),
    );
    Ok(())
}
