//! Overlay-based checkpointing (§5.3.2): an HPC-style iterative solver
//! checkpoints its state every N iterations; only the overlay-captured
//! deltas go to the backing store, and a crash is recovered by
//! replaying deltas.
//!
//! Run with: `cargo run --release --example hpc_checkpoint`

use page_overlays::techniques::Checkpointer;
use page_overlays::types::{LineData, PoResult};

const PAGES: u64 = 64; // a 256 KB "solver state"
const ITERATIONS: usize = 6;

fn main() -> PoResult<()> {
    let mut ck = Checkpointer::new(PAGES);

    // The solver mutates a sliding frontier of its state each iteration.
    for iter in 0..ITERATIONS {
        let frontier = (iter as u64 * 7) % PAGES;
        for p in frontier..(frontier + 5).min(PAGES) {
            for line in (iter % 4..64).step_by(9) {
                ck.write(p, line, LineData::splat((iter * 31 + line) as u8))?;
            }
        }
        let delta = ck.take_checkpoint()?;
        println!(
            "iteration {iter}: checkpointed {} lines, {} bytes to backing store",
            delta.lines.len(),
            delta.backing_bytes()
        );
    }

    let stats = ck.stats();
    println!(
        "\ntotal backing-store volume: {} bytes (page-granularity scheme: {} bytes, {:.1}x more)",
        stats.backing_bytes,
        stats.page_scheme_bytes,
        stats.page_scheme_bytes.get() as f64 / stats.backing_bytes.get() as f64
    );

    // Crash! Recover to the state at checkpoint 3 and compare with the
    // live state the checkpointer still holds for those pages.
    let snapshot = ck.restore(3);
    println!("\nrestored checkpoint 3: {} pages reconstructed", snapshot.len());
    // Recovery at the final checkpoint matches the live state exactly.
    let last = ck.restore(ITERATIONS - 1);
    for p in 0..PAGES {
        for (line, &got) in last[p as usize].iter().enumerate() {
            assert_eq!(got, ck.read(p, line)?, "page {p} line {line} diverged after recovery");
        }
    }
    println!("full-state recovery verified against the live image ✓");
    Ok(())
}
