//! Sparse matrix-vector multiplication over page overlays (§5.2).
//!
//! Builds a sparse matrix three ways — dense, CSR, and overlay-backed —
//! verifies they compute identical results, times one SpMV iteration of
//! each on the Table 2 machine, and demonstrates the overlay
//! representation's cheap dynamic insertion (the operation that forces
//! CSR to shift its arrays).
//!
//! Run with: `cargo run --release --example sparse_spmv`

use page_overlays::sparse::{gen, nonzero_locality, CsrMatrix, OverlayMatrix, TimedSpmv};

fn main() {
    // A clustered matrix with good line locality (L ≈ 8): the regime
    // where the paper's overlay representation beats CSR.
    let t = gen::clustered(40, 512, 20_000, 8, true, 7);
    let l = nonzero_locality(&t, 64);
    println!("matrix: {}x{}, {} non-zeros, L = {l:.2}", t.rows(), t.cols(), t.nnz());

    // 1. The three representations agree numerically.
    let dense = t.to_dense();
    let csr = CsrMatrix::from_triplets(&t);
    let mut ovl = OverlayMatrix::from_triplets(&t);
    let x: Vec<f64> = (0..t.cols()).map(|i| (i % 13) as f64 * 0.5 - 3.0).collect();
    let y_dense = dense.spmv(&x);
    let y_csr = csr.spmv(&x);
    let y_ovl = ovl.spmv(&x);
    assert_eq!(y_dense, y_csr);
    assert_eq!(y_csr, y_ovl);
    println!("SpMV results identical across dense / CSR / overlay ✓");

    // 2. Time one iteration of each on the simulated machine.
    let timed = TimedSpmv::table2();
    let td = timed.time_dense(t.rows(), t.cols()).expect("dense");
    let tc = timed.time_csr(&csr).expect("csr");
    let to = timed.time_overlay(&ovl).expect("overlay");
    println!("\n              cycles   memory_bytes");
    println!("dense    {:>11}   {:>12}", td.cycles, td.memory_bytes);
    println!("CSR      {:>11}   {:>12}", tc.cycles, tc.memory_bytes);
    println!("overlay  {:>11}   {:>12}", to.cycles, to.memory_bytes);
    println!(
        "\noverlay vs CSR at L = {l:.1}: {:.2}x performance, {:.2}x memory",
        tc.cycles as f64 / to.cycles as f64,
        to.memory_bytes as f64 / tc.memory_bytes as f64
    );

    // 3. Dynamic update: inserting a non-zero into a currently-zero
    // cell (find one first — the matrix is dense in places).
    let (r0, c0) = (0..t.rows())
        .flat_map(|r| (0..t.cols()).map(move |c| (r, c)))
        .find(|&(r, c)| dense.get(r, c) == 0.0)
        .expect("matrix has at least one zero");
    let mut csr_mut = csr.clone();
    let moved = csr_mut.insert(r0, c0, 1.5);
    let lines_before = ovl.nonzero_lines();
    ovl.set(r0, c0, 1.5);
    println!(
        "\ndynamic insert of one value:\n  CSR moved {moved} array elements;\n  \
         overlay added {} cache line(s) and moved nothing.",
        ovl.nonzero_lines() - lines_before
    );
    assert_eq!(csr_mut.spmv(&x), ovl.spmv(&x));
    println!("post-insert results still identical ✓");
}
