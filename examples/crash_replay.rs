//! Crash-point recovery, end to end (DESIGN.md §8).
//!
//! Runs a fork/overlay workload that snapshots the machine every few
//! ops and journals the ops since the last snapshot. A scheduled
//! [`FaultSite::CrashPoint`] kills the run mid-workload; recovery
//! restores the snapshot, replays the journal (after a round-trip
//! through the on-disk trace format), and the recovered machine is
//! compared **byte for byte** against an uninterrupted golden run.
//!
//! Run with: `cargo run --release --example crash_replay`

use page_overlays::sim::{read_trace, write_trace, Machine, SimHarness, SystemConfig, TraceOp};
use page_overlays::types::{FaultPlan, FaultSite, PoResult, VirtAddr};

const SNAPSHOT_EVERY: usize = 8;
const CRASH_AT: u64 = 23;

/// The workload: spawn, map, diverge pages after a fork, promote some
/// overlays, and read everything back.
fn workload() -> Vec<TraceOp> {
    let mut ops = vec![TraceOp::Spawn, TraceOp::Map { proc_sel: 0, start: 0x100, count: 6 }];
    for i in 0..8u64 {
        ops.push(TraceOp::Poke {
            proc_sel: 0,
            va: VirtAddr::new(0x100_000 + i * 257),
            value: i as u8,
        });
    }
    ops.push(TraceOp::Fork { proc_sel: 0 });
    for i in 0..10u64 {
        // Parent and child diverge on the shared pages: overlay lines.
        ops.push(TraceOp::Poke {
            proc_sel: (i % 2) as u32,
            va: VirtAddr::new(0x100_000 + i * 513),
            value: 0x80 | i as u8,
        });
    }
    ops.push(TraceOp::CommitPage { proc_sel: 0, vpn: 0x100 });
    ops.push(TraceOp::DiscardPage { proc_sel: 1, vpn: 0x101 });
    ops.push(TraceOp::Flush);
    for i in 0..6u64 {
        ops.push(TraceOp::Peek {
            proc_sel: (i % 2) as u32,
            va: VirtAddr::new(0x100_000 + i * 513),
        });
    }
    ops
}

fn main() -> PoResult<()> {
    let config = SystemConfig::table2_overlay();
    let ops = workload();
    println!(
        "workload: {} ops, snapshot every {SNAPSHOT_EVERY}, crash at op {CRASH_AT}",
        ops.len()
    );

    // Golden run: no crash, but the same fault-plan shape so the two
    // runs count crash-point queries identically.
    let golden_plan = FaultPlan::new(7).at_queries(FaultSite::CrashPoint, []);
    let mut golden = SimHarness::with_fault_plan(config.clone(), golden_plan)?;
    for op in &ops {
        golden.apply(op).expect("golden run diverged");
        golden.machine.poll_crash_point();
    }
    golden.machine.clear_fault_trigger(FaultSite::CrashPoint);

    // Crashy run: dies at the CRASH_AT-th op boundary.
    let crashy_plan = FaultPlan::new(7).at_queries(FaultSite::CrashPoint, [CRASH_AT]);
    let mut h = SimHarness::with_fault_plan(config, crashy_plan)?;
    let mut snapshot: Vec<u8> = Vec::new();
    let mut journal_from = 0usize;
    for (i, op) in ops.iter().enumerate() {
        if i % SNAPSHOT_EVERY == 0 {
            snapshot = h.machine.save_snapshot();
            journal_from = i;
            println!("op {i:2}: snapshot ({} bytes)", snapshot.len());
        }
        h.apply(op).expect("crashy run diverged");
        if h.machine.poll_crash_point() {
            println!("op {i:2}: CRASH — restoring snapshot from op {journal_from}");
            h.machine.restore_snapshot(&snapshot)?;
            h.machine.clear_fault_trigger(FaultSite::CrashPoint);

            // Re-derive the journal the way a real recovery would: from
            // the serialized trace file.
            let mut file = Vec::new();
            write_trace(&mut file, &ops[journal_from..]).expect("journal write");
            let journal = read_trace(file.as_slice()).expect("journal read");
            println!("        replaying {} journaled ops through the trace format", journal.len());
            for op in &journal {
                h.apply(op).expect("replay diverged");
                h.machine.poll_crash_point();
            }
            break;
        }
    }
    h.machine.clear_fault_trigger(FaultSite::CrashPoint);

    let golden_bytes = golden.machine.save_snapshot();
    let recovered_bytes = h.machine.save_snapshot();
    assert_eq!(
        golden_bytes, recovered_bytes,
        "recovered machine must be byte-identical to the golden run"
    );
    println!(
        "recovered machine is byte-identical to the golden run ({} snapshot bytes)",
        golden_bytes.len()
    );

    // The functional contents survived too: spot-check via a fresh
    // restore into a third machine.
    let mut third = Machine::new(golden.machine.config().clone())?;
    third.restore_snapshot(&recovered_bytes)?;
    let parent = h.procs[0];
    assert_eq!(
        third.peek(parent, VirtAddr::new(0x100_000))?,
        h.machine.peek(parent, VirtAddr::new(0x100_000))?
    );
    println!("fresh machine restored from the recovered snapshot reads identically");
    Ok(())
}
