//! Crash-point recovery, end to end (DESIGN.md §8, §13).
//!
//! **Part 1 — crash at an op boundary.** Runs a fork/overlay workload
//! that snapshots the machine every few ops and journals the ops since
//! the last snapshot. A scheduled [`FaultSite::CrashPoint`] kills the
//! run mid-workload; recovery restores the snapshot, replays the
//! journal (after a round-trip through the on-disk trace format), and
//! the recovered machine is compared **byte for byte** against an
//! uninterrupted golden run.
//!
//! **Part 2 — crash *inside* a transition.** The same crash point is
//! armed at [`CrashStage::MidPromotion`]: the power is cut half-way
//! through an overlay promotion, after the new page frame is prepared
//! but before the page table flips to it. The executable spec
//! (`po-spec`) first judges the frozen state a *legal interior state*
//! ([`SimHarness::check_interior_crash`]), then the same
//! snapshot-restore-replay recovery converges byte-identically with a
//! golden run whose promotion was never interrupted.
//!
//! Run with: `cargo run --release --example crash_replay`

use page_overlays::sim::{
    read_trace, write_trace, DiffOracle, Machine, SimHarness, SpecMirror, SystemConfig, TraceOp,
};
use page_overlays::types::{Asid, CrashStage, FaultPlan, FaultSite, PoResult, VirtAddr};

const SNAPSHOT_EVERY: usize = 8;
const CRASH_AT: u64 = 23;

/// Everything recovery needs to rewind: the machine snapshot plus the
/// harness-side mirrors (byte oracle, spec state, process list) that
/// live outside the machine and must be rewound with it.
struct Checkpoint {
    bytes: Vec<u8>,
    oracle: DiffOracle,
    spec: SpecMirror,
    procs: Vec<Asid>,
    from: usize,
}

impl Checkpoint {
    fn save(h: &SimHarness, from: usize) -> Self {
        Checkpoint {
            bytes: h.machine.save_snapshot(),
            oracle: h.oracle.clone(),
            spec: h.spec.clone(),
            procs: h.procs.clone(),
            from,
        }
    }

    fn restore(self, h: &mut SimHarness) -> PoResult<usize> {
        h.machine.restore_snapshot(&self.bytes)?;
        h.machine.clear_fault_trigger(FaultSite::CrashPoint);
        h.oracle = self.oracle;
        h.spec = self.spec;
        h.procs = self.procs;
        Ok(self.from)
    }
}

/// Replays the journaled op suffix the way a real recovery would: from
/// the serialized trace file, not from in-memory state.
fn replay_journal(h: &mut SimHarness, journal: &[TraceOp]) {
    let mut file = Vec::new();
    write_trace(&mut file, journal).expect("journal write");
    let journal = read_trace(file.as_slice()).expect("journal read");
    println!("        replaying {} journaled ops through the trace format", journal.len());
    for op in &journal {
        h.apply(op).expect("replay diverged");
        assert!(h.take_crashed().is_none(), "crash re-fired during replay");
        h.machine.poll_crash_point();
    }
}

/// The part-1 workload: spawn, map, diverge pages after a fork, promote
/// some overlays, and read everything back.
fn workload() -> Vec<TraceOp> {
    let mut ops = vec![TraceOp::Spawn, TraceOp::Map { proc_sel: 0, start: 0x100, count: 6 }];
    for i in 0..8u64 {
        ops.push(TraceOp::Poke {
            proc_sel: 0,
            va: VirtAddr::new(0x100_000 + i * 257),
            value: i as u8,
        });
    }
    ops.push(TraceOp::Fork { proc_sel: 0 });
    for i in 0..10u64 {
        // Parent and child diverge on the shared pages: overlay lines.
        ops.push(TraceOp::Poke {
            proc_sel: (i % 2) as u32,
            va: VirtAddr::new(0x100_000 + i * 513),
            value: 0x80 | i as u8,
        });
    }
    ops.push(TraceOp::CommitPage { proc_sel: 0, vpn: 0x100 });
    ops.push(TraceOp::DiscardPage { proc_sel: 1, vpn: 0x101 });
    ops.push(TraceOp::Flush);
    for i in 0..6u64 {
        ops.push(TraceOp::Peek {
            proc_sel: (i % 2) as u32,
            va: VirtAddr::new(0x100_000 + i * 513),
        });
    }
    ops
}

fn boundary_crash_demo() -> PoResult<()> {
    let config = SystemConfig::table2_overlay();
    let ops = workload();
    println!(
        "workload: {} ops, snapshot every {SNAPSHOT_EVERY}, crash at op {CRASH_AT}",
        ops.len()
    );

    // Golden run: no crash, but the same fault-plan shape so the two
    // runs count crash-point queries identically.
    let golden_plan = FaultPlan::new(7).at_queries(FaultSite::CrashPoint, []);
    let mut golden = SimHarness::with_fault_plan(config.clone(), golden_plan)?;
    for op in &ops {
        golden.apply(op).expect("golden run diverged");
        golden.machine.poll_crash_point();
    }
    golden.machine.clear_fault_trigger(FaultSite::CrashPoint);

    // Crashy run: dies at the CRASH_AT-th op boundary.
    let crashy_plan = FaultPlan::new(7).at_queries(FaultSite::CrashPoint, [CRASH_AT]);
    let mut h = SimHarness::with_fault_plan(config, crashy_plan)?;
    let mut checkpoint = Checkpoint::save(&h, 0);
    for (i, op) in ops.iter().enumerate() {
        if i % SNAPSHOT_EVERY == 0 {
            checkpoint = Checkpoint::save(&h, i);
            println!("op {i:2}: snapshot ({} bytes)", checkpoint.bytes.len());
        }
        h.apply(op).expect("crashy run diverged");
        if h.machine.poll_crash_point() {
            let from = checkpoint.restore(&mut h)?;
            println!("op {i:2}: CRASH — restoring snapshot from op {from}");
            replay_journal(&mut h, &ops[from..]);
            break;
        }
    }
    h.machine.clear_fault_trigger(FaultSite::CrashPoint);

    let golden_bytes = golden.machine.save_snapshot();
    let recovered_bytes = h.machine.save_snapshot();
    assert_eq!(
        golden_bytes, recovered_bytes,
        "recovered machine must be byte-identical to the golden run"
    );
    println!(
        "recovered machine is byte-identical to the golden run ({} snapshot bytes)",
        golden_bytes.len()
    );

    // The functional contents survived too: spot-check via a fresh
    // restore into a third machine.
    let mut third = Machine::new(golden.machine.config().clone())?;
    third.restore_snapshot(&recovered_bytes)?;
    let parent = h.procs[0];
    assert_eq!(
        third.peek(parent, VirtAddr::new(0x100_000))?,
        h.machine.peek(parent, VirtAddr::new(0x100_000))?
    );
    println!("fresh machine restored from the recovered snapshot reads identically");
    Ok(())
}

/// The part-2 workload: fork a process, then issue timed stores to
/// distinct cache lines of one shared page. With `promote_threshold: 4`
/// the fourth new overlay line triggers a full-page promotion — the
/// multi-step transition the interior crash lands inside.
fn promotion_workload() -> Vec<TraceOp> {
    let mut ops = vec![
        TraceOp::Spawn,
        TraceOp::Map { proc_sel: 0, start: 0x100, count: 2 },
        TraceOp::Fork { proc_sel: 0 },
    ];
    for line in 0..6u64 {
        ops.push(TraceOp::Store(VirtAddr::new(0x100_000 + line * 64)));
    }
    ops
}

fn interior_crash_demo() -> PoResult<()> {
    let config = SystemConfig { promote_threshold: 4, ..SystemConfig::table2_overlay() };
    let ops = promotion_workload();
    println!(
        "workload: {} ops, promote_threshold 4, crash armed at the first {} poll",
        ops.len(),
        CrashStage::MidPromotion.name()
    );

    // Both plans carry the stage so the fault-injector state inside the
    // two machines' snapshots stays byte-identical.
    let golden_plan = FaultPlan::new(9)
        .at_queries(FaultSite::CrashPoint, [])
        .with_crash_stage(CrashStage::MidPromotion);
    let mut golden = SimHarness::with_fault_plan(config.clone(), golden_plan)?;
    for op in &ops {
        golden.apply(op).expect("golden run diverged");
        assert!(golden.take_crashed().is_none(), "crash fired in the golden run");
        golden.machine.poll_crash_point();
    }
    golden.machine.clear_fault_trigger(FaultSite::CrashPoint);

    let crashy_plan = FaultPlan::new(9)
        .at_queries(FaultSite::CrashPoint, [0])
        .with_crash_stage(CrashStage::MidPromotion);
    let mut h = SimHarness::with_fault_plan(config, crashy_plan)?;
    let mut checkpoint = Checkpoint::save(&h, 0);
    let mut fired = false;
    for (i, op) in ops.iter().enumerate() {
        if i % 4 == 0 {
            checkpoint = Checkpoint::save(&h, i);
            println!("op {i:2}: snapshot ({} bytes)", checkpoint.bytes.len());
        }
        h.apply(op).expect("crashy run diverged");
        if let Some(stage) = h.take_crashed() {
            println!("op {i:2}: POWER CUT inside the {} stage of {op:?}", stage.name());
            // Before recovery wipes the evidence: the executable spec
            // must admit this half-done promotion as a legal interior
            // state (old frame still mapped, overlay intact).
            h.check_interior_crash(op).expect("frozen state must be spec-legal");
            println!("        the spec admits the frozen state as a legal interior state");
            let from = checkpoint.restore(&mut h)?;
            println!("        restoring snapshot from op {from}");
            replay_journal(&mut h, &ops[from..]);
            fired = true;
            break;
        }
        h.machine.poll_crash_point();
    }
    assert!(fired, "the mid-promotion crash never fired");
    h.machine.clear_fault_trigger(FaultSite::CrashPoint);

    assert_eq!(
        golden.machine.save_snapshot(),
        h.machine.save_snapshot(),
        "machine recovered from an interior crash must converge with the golden run"
    );
    println!("recovered machine is byte-identical to the uninterrupted golden run");
    Ok(())
}

fn main() -> PoResult<()> {
    println!("-- part 1: crash at an op boundary --");
    boundary_crash_demo()?;
    println!("\n-- part 2: crash inside a promotion (interior stage) --");
    interior_crash_demo()
}
