//! Unbounded speculation over overlays (§5.3.3).
//!
//! Cache-based transactional memory aborts when a speculatively-written
//! line is evicted. Overlay-buffered speculation survives eviction: the
//! speculative state simply moves to the Overlay Memory Store. This
//! example runs a transaction whose write set far exceeds the 64 KB L1,
//! forces every speculative line out of the cache, and then both aborts
//! and commits correctly.
//!
//! Run with: `cargo run --release --example unbounded_speculation`

use page_overlays::techniques::SpeculativeRegion;
use page_overlays::types::{LineData, PoResult};

fn main() -> PoResult<()> {
    let pages = 128u64; // 512 KB region
    let mut region = SpeculativeRegion::new(pages);

    // Committed initial state.
    for p in 0..pages {
        region.write(p, 0, LineData::splat(0x11))?;
    }

    // --- Transaction 1: overflow the cache, then abort. --------------
    region.begin()?;
    let mut spec_lines = 0;
    for p in 0..pages {
        for l in 0..32 {
            region.spec_write(p, l, LineData::splat(0xEE))?;
            spec_lines += 1;
        }
    }
    println!(
        "transaction 1: {spec_lines} speculative lines ({} KB) — {}x the 64 KB L1",
        spec_lines * 64 / 1024,
        spec_lines * 64 / (64 * 1024)
    );
    let evicted = region.evict_speculative_state()?;
    println!("evicted {evicted} speculative lines to the Overlay Memory Store");
    println!("(a cache-bound TM design would have aborted here)");
    region.abort()?;
    assert_eq!(region.read(0, 0)?, LineData::splat(0x11));
    assert_eq!(region.read(77, 5)?, LineData::zeroed());
    println!("abort rolled everything back ✓\n");

    // --- Transaction 2: same overflow, then commit. ------------------
    region.begin()?;
    for p in 0..pages {
        for l in 0..32 {
            region.spec_write(p, l, LineData::splat(0xCC))?;
        }
    }
    region.evict_speculative_state()?;
    region.commit()?;
    assert_eq!(region.read(0, 0)?, LineData::splat(0xCC));
    assert_eq!(region.read(127, 31)?, LineData::splat(0xCC));
    println!("transaction 2 committed {spec_lines} lines after full eviction ✓");
    println!("\nstats: {:?}", region.stats());
    Ok(())
}
