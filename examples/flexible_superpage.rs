//! Flexible super-pages (§5.3.5): copy-on-write and per-segment
//! protection *inside* a 2 MB super-page.
//!
//! Conventional systems must choose between a super-page's TLB reach
//! and page-granularity tricks like CoW. With overlays at the PMD
//! level, a super-page splits into 64 segments of 32 KB that can
//! individually diverge.
//!
//! Run with: `cargo run --release --example flexible_superpage`

use page_overlays::techniques::superpage::SegmentProtection;
use page_overlays::techniques::FlexSuperPage;
use page_overlays::types::{PoResult, Vpn};
use page_overlays::vm::FrameAllocator;

fn main() -> PoResult<()> {
    let mut alloc = FrameAllocator::new(1 << 16);
    let base = alloc.alloc_contiguous(512)?; // one 2 MB super-page
    let mut sp = FlexSuperPage::new(Vpn::new(0), base).expect("aligned");

    println!("== flexible super-page (512 pages, 64 segments of 8 pages) ==\n");

    // Share the whole super-page copy-on-write (e.g. after a VM clone).
    sp.mark_cow();
    let before = alloc.allocated();

    // Three writes into two distinct segments.
    let copied_a = sp.write_page(Vpn::new(17), &mut alloc)?; // segment 2
    let copied_b = sp.write_page(Vpn::new(18), &mut alloc)?; // same segment
    let copied_c = sp.write_page(Vpn::new(400), &mut alloc)?; // segment 50
    println!("write to vpn 17  → copied {copied_a} pages (one 32 KB segment)");
    println!("write to vpn 18  → copied {copied_b} pages (segment already private)");
    println!("write to vpn 400 → copied {copied_c} pages");
    println!(
        "total frames copied: {} of 512 ({} bytes instead of 2 MB)",
        alloc.allocated() - before,
        sp.diverged_bytes()
    );
    assert_eq!(alloc.allocated() - before, 16);

    // Translation: diverged segments remap, the rest stay contiguous.
    let p0 = sp.translate(Vpn::new(0))?;
    let p17 = sp.translate(Vpn::new(17))?;
    let p100 = sp.translate(Vpn::new(100))?;
    println!("\ntranslate vpn 0   → ppn {:#x} (shared base)", p0.raw());
    println!("translate vpn 17  → ppn {:#x} (private copy)", p17.raw());
    println!("translate vpn 100 → ppn {:#x} (shared base + 100)", p100.raw());
    assert_eq!(p100.raw(), p0.raw() + 100);
    assert_ne!(p17.raw(), p0.raw() + 17);

    // Protection domains within the super-page: the diverged segment is
    // writable again, a hand-protected one is read-only, everything else
    // is still in CoW (read-only) mode.
    sp.protect_segment(Vpn::new(56), SegmentProtection::ReadOnly)?;
    println!(
        "\nper-segment protection: vpn 17 {:?} (diverged), vpn 56 {:?} (pinned read-only)",
        sp.protection(Vpn::new(17))?,
        sp.protection(Vpn::new(56))?,
    );
    assert_eq!(sp.protection(Vpn::new(17))?, SegmentProtection::ReadWrite);
    println!(
        "OBitVector over segments: {} ({} of 64 segments diverged)",
        sp.seg_bitvec(),
        sp.seg_bitvec().len()
    );
    Ok(())
}
