//! The paper's §5.1 scenario on one workload: checkpoint a process with
//! `fork` and compare copy-on-write against overlay-on-write — the
//! single-benchmark version of Figures 8 and 9.
//!
//! Run with: `cargo run --release --example fork_checkpoint [-- <name>]`
//! where `<name>` is one of the 15 benchmarks (default: `mcf`).

use page_overlays::sim::{run_fork_experiment, SystemConfig};
use page_overlays::workloads::spec_suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let spec = spec_suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; see po_workloads::spec_suite()"));

    let warmup_instr = 400_000;
    let post_instr = 600_000;
    println!(
        "== fork checkpoint: {} ({:?}) ==\n{} dirty pages expected, {} lines per dirty page\n",
        spec.name,
        spec.wtype,
        spec.dirty_pages(post_instr),
        spec.lines_per_dirty_page
    );

    let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
    let warmup = spec.generate_warmup(warmup_instr, 42);
    let post = spec.generate_post_fork(post_instr, 42);

    let cow = run_fork_experiment(SystemConfig::table2(), spec.base_vpn(), mapped, &warmup, &post)
        .expect("CoW run failed");
    let oow = run_fork_experiment(
        SystemConfig::table2_overlay(),
        spec.base_vpn(),
        mapped,
        &warmup,
        &post,
    )
    .expect("OoW run failed");

    println!("                       copy-on-write   overlay-on-write");
    println!("post-fork CPI        {:>15.3} {:>18.3}", cow.cpi, oow.cpi);
    println!("extra memory (bytes) {:>15} {:>18}", cow.extra_memory_bytes, oow.extra_memory_bytes);
    println!("pages copied         {:>15} {:>18}", cow.pages_copied, oow.pages_copied);
    println!("overlaying writes    {:>15} {:>18}", cow.overlaying_writes, oow.overlaying_writes);
    println!(
        "\noverlay-on-write: {:.1}% faster, {:.1}% less extra memory",
        (1.0 - oow.cpi / cow.cpi) * 100.0,
        (1.0 - oow.extra_memory_bytes as f64 / cow.extra_memory_bytes.max(1) as f64) * 100.0
    );
}
