//! Quickstart: the page-overlay access semantics, end to end.
//!
//! Builds the Table 2 machine, forks a process, and shows how a single
//! store diverges one cache line through an overlay instead of copying
//! a whole page — then inspects the framework state (OBitVector, OMT,
//! Overlay Memory Store) along the way.
//!
//! Run with: `cargo run --release --example quickstart`

use page_overlays::sim::{Machine, SystemConfig};
use page_overlays::types::{PoResult, VirtAddr, Vpn};

fn main() -> PoResult<()> {
    println!("== Page overlays quickstart ==\n");

    // A Table 2 system with overlay-on-write enabled.
    let mut machine = Machine::new(SystemConfig::table2_overlay())?;
    let parent = machine.spawn_process()?;
    machine.map_range(parent, Vpn::new(0x100), 8)?;

    // Fill a page with recognizable data.
    let addr = VirtAddr::new(0x100 * 4096);
    for i in 0..16u64 {
        machine.poke(parent, addr.add(i * 64), 0xA0 + i as u8)?;
    }

    // fork: parent and child share every frame copy-on-write, with
    // overlays enabled on the shared pages.
    let child = machine.fork(parent)?;
    println!("forked: parent={parent}, child={child}");

    // A single store in the parent. Under classic CoW this would copy
    // the whole 4 KB page; with overlays it moves exactly one 64 B line.
    machine.poke(parent, addr, 0xFF)?;

    println!("parent reads back: {:#x}", machine.peek(parent, addr)?);
    println!("child still sees:  {:#x}", machine.peek(child, addr)?);
    assert_eq!(machine.peek(parent, addr)?, 0xFF);
    assert_eq!(machine.peek(child, addr)?, 0xA0);

    // Inspect the framework: one overlay exists, holding one line.
    let opn = page_overlays::types::Opn::encode(parent, addr.vpn());
    let obv = machine.overlay().obitvec(opn)?;
    println!("\nOBitVector of the diverged page: {obv}");
    println!("lines in overlay: {}", obv.len());
    assert_eq!(obv.len(), 1);
    assert!(obv.contains(0));

    // Memory cost: the overlay consumes one small segment once evicted,
    // not a page.
    machine.mark_memory_epoch();
    machine.flush_overlays()?;
    println!(
        "overlay store in use: {} bytes (vs 4096 for a page copy)",
        machine.overlay().store().bytes_in_use()
    );

    // The other technique flavors are one call away:
    println!("\nframework stats: {:?}", machine.overlay().stats());
    println!("\nOK: one store diverged one line, not one page.");
    Ok(())
}
