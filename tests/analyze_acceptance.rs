//! Verifier-vs-runtime agreement: the po-analyze abstract interpreter
//! replays the same seeded fuzz traces as the real machine, and its
//! claims must hold against the concrete state.
//!
//! Soundness contract (while the abstract state stays precise —
//! `!degraded && !collapsed`):
//!
//! * the process count is exact (spawn order = harness `procs` order);
//! * a page's `mapped` Tri matches the concrete page table in both
//!   directions (`Yes` ⇒ translated, `No` ⇒ fault, and every concrete
//!   mapping is claimed `Yes`);
//! * definite PTE flags (`writable`/`cow`/`enabled`) match the
//!   concrete flags; `Maybe` claims nothing;
//! * `overlay.must ⊆ concrete OBitVector ⊆ overlay.may`.
//!
//! Well-formedness agreement is unconditional: a trace text parses
//! (`read_trace` Ok) iff the verifier accepts it, and every accepted
//! generated trace replays through `run_ops`.

use po_analyze::verifier::Tri;
use po_analyze::{verify_ops, verify_trace_text, Verdict, VerifierOptions};
use po_sim::{generate_ops, read_trace, run_ops, write_trace, SimHarness, SystemConfig};
use po_types::geometry::PAGE_SIZE;
use po_types::{Opn, VirtAddr, Vpn};

const SEEDS: u64 = 100;

fn trace_len(seed: u64) -> usize {
    120 + (seed as usize % 5) * 20
}

/// Checks one abstract/concrete state pair; panics with context on the
/// first disagreement. Returns `false` when the abstract state was not
/// precise (nothing checkable beyond replay success).
fn check_agreement(
    ctx: &str,
    harness: &SimHarness,
    state: &po_analyze::verifier::AbsState,
) -> bool {
    if state.degraded || state.collapsed {
        return false;
    }
    assert!(state.procs_exact, "{ctx}: precise state must have an exact process count");
    assert_eq!(state.procs, harness.procs.len(), "{ctx}: process count");

    let os = harness.machine.os();
    let overlay = harness.machine.overlay();

    // Forward direction: every abstract claim holds concretely.
    for (&(p, vpn), page) in &state.pages {
        let asid = harness.procs[p];
        let va = VirtAddr::new(vpn * PAGE_SIZE as u64);
        let pte = os.translate(asid, va).ok();
        match page.mapped {
            Tri::Yes => assert!(pte.is_some(), "{ctx}: p{p} vpn {vpn:#x} claimed mapped"),
            Tri::No => assert!(pte.is_none(), "{ctx}: p{p} vpn {vpn:#x} claimed unmapped"),
            Tri::Maybe => {}
        }
        if let Some(pte) = pte {
            for (what, claim, concrete) in [
                ("writable", page.writable, pte.flags.writable),
                ("cow", page.cow, pte.flags.cow),
                ("overlay_enabled", page.enabled, pte.flags.overlay_enabled),
            ] {
                match claim {
                    Tri::Yes => assert!(concrete, "{ctx}: p{p} vpn {vpn:#x} {what} claimed set"),
                    Tri::No => assert!(!concrete, "{ctx}: p{p} vpn {vpn:#x} {what} claimed clear"),
                    Tri::Maybe => {}
                }
            }
        }
        let opn = Opn::encode(asid, Vpn::new(vpn));
        let concrete = if overlay.has_overlay(opn) {
            overlay.obitvec(opn).expect("obitvec of live overlay").raw()
        } else {
            0
        };
        assert_eq!(
            page.overlay.must & !concrete,
            0,
            "{ctx}: p{p} vpn {vpn:#x} must-lines {:#018x} not all in concrete {concrete:#018x}",
            page.overlay.must
        );
        assert_eq!(
            concrete & !page.overlay.may,
            0,
            "{ctx}: p{p} vpn {vpn:#x} concrete {concrete:#018x} exceeds may {:#018x}",
            page.overlay.may
        );
    }

    // Reverse direction: an absent key means "definitely unmapped".
    for (p, &asid) in harness.procs.iter().enumerate() {
        for vpn in harness.oracle.mapped_pages(asid) {
            let claimed = state.pages.get(&(p, vpn.raw())).map(|pg| pg.mapped).unwrap_or(Tri::No);
            assert_eq!(
                claimed,
                Tri::Yes,
                "{ctx}: p{p} vpn {:#x} is concretely mapped but claimed {claimed:?}",
                vpn.raw()
            );
        }
    }
    true
}

fn agreement_over_seeds(config: &SystemConfig, label: &str) {
    let mut precise = 0usize;
    for seed in 0..SEEDS {
        let ops = generate_ops(seed, trace_len(seed));
        let ctx = format!("{label} seed {seed}");

        // The harness itself must replay the trace (benign failures are
        // skips inside `apply`; a hard error is a generator bug).
        let mut harness = SimHarness::new(config.clone()).expect("machine construction");
        for (i, op) in ops.iter().enumerate() {
            harness.apply(op).unwrap_or_else(|e| panic!("{ctx}: op {i}: {e}"));
        }

        let analysis = verify_ops(config, &ops, &VerifierOptions::default(), &ctx);
        assert_eq!(analysis.verdict, Verdict::Accept, "{ctx}: well-formed traces always replay");
        if check_agreement(&ctx, &harness, &analysis.state) {
            precise += 1;
        }
    }
    assert!(
        precise >= SEEDS as usize / 2,
        "{label}: only {precise}/{SEEDS} traces stayed precise — the agreement test is vacuous"
    );
}

#[test]
fn verifier_agrees_with_machine_overlay_mode() {
    agreement_over_seeds(&SystemConfig::table2_overlay(), "overlay");
}

#[test]
fn verifier_agrees_with_machine_cow_mode() {
    agreement_over_seeds(&SystemConfig::table2(), "cow");
}

#[test]
fn acceptance_matches_run_ops_and_parser() {
    let config = SystemConfig::table2_overlay();
    for seed in 0..20u64 {
        let ops = generate_ops(seed, 80);
        // Round-trip through the text format: still parses, still accepted.
        let mut text = Vec::new();
        write_trace(&mut text, &ops).expect("serialize");
        let text = String::from_utf8(text).expect("trace text is ascii");
        assert!(read_trace(text.as_bytes()).is_ok(), "seed {seed}: round-trip parses");
        let analysis = verify_trace_text(&config, &text, &VerifierOptions::default(), "roundtrip");
        assert_eq!(analysis.verdict, Verdict::Accept, "seed {seed}");
        assert!(run_ops(&config, None, &ops, false).is_ok(), "seed {seed}: machine replays");
    }
}

#[test]
fn rejection_matches_parser() {
    let config = SystemConfig::table2_overlay();
    let malformed = [
        "!trace-version 2\nBOGUS 1\n",
        "!trace-version 2\n!ops 3\nP\n",
        "!trace-version 2\nK 0 100 64 1\n",
        "!trace-version 1\nP\n",
        "!trace-version 2\n!trace-version 2\nP\n",
        "!trace-version 2\nM 0 zz 1\n",
    ];
    for text in malformed {
        assert!(read_trace(text.as_bytes()).is_err(), "parser must reject: {text:?}");
        let analysis = verify_trace_text(&config, text, &VerifierOptions::default(), "bad");
        assert_eq!(analysis.verdict, Verdict::Reject, "verifier must reject: {text:?}");
        assert_eq!(analysis.report.findings[0].rule, "PA-V000");
    }
}
