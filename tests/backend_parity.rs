//! Backend-parity differential tests (DESIGN.md §17): the same op
//! stream driven through the overlay backend and the segmented-paging
//! rival must produce identical *functional* outcomes — every load,
//! store, and fork-visibility decision — while timing and stats are
//! free to differ (that difference is the comparative-lab signal).
//!
//! The shared corpus is [`generate_ops`] minus the two op kinds whose
//! functional meaning is backend-specific by design:
//!
//! * `SeedLine` force-populates an overlay; the harness only issues it
//!   on pages reading through an overlay (`overlay_enabled`), so under
//!   a backend without overlays it is skipped — dropping it keeps the
//!   two byte histories aligned.
//! * `DiscardPage` reverts a page's divergence under overlay semantics
//!   but has nothing to revert once a store privatized the page via
//!   classic CoW — the one deliberate semantic difference.
//!
//! Ops are generated once and filtered; subsequences of a generated
//! stream are valid streams, so the filtered corpus needs no repair.

use page_overlays::sim::{generate_ops, BackendKind, SimHarness, SystemConfig, TraceOp};
use page_overlays::types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use page_overlays::types::VirtAddr;

/// The shared cross-backend corpus for one seed.
fn parity_ops(seed: u64, count: usize) -> Vec<TraceOp> {
    generate_ops(seed, count)
        .into_iter()
        .filter(|op| !matches!(op, TraceOp::SeedLine { .. } | TraceOp::DiscardPage { .. }))
        .collect()
}

fn config_for(backend: BackendKind) -> SystemConfig {
    SystemConfig { backend, ..SystemConfig::table2_overlay() }
}

/// Drives `ops` through a fresh harness on `backend`, failing the test
/// on any internal divergence (byte oracle, invariants, refinement).
fn run_on(backend: BackendKind, ops: &[TraceOp], seed: u64) -> SimHarness {
    let mut h = SimHarness::new(config_for(backend)).expect("harness construction");
    for op in ops {
        h.apply(op).unwrap_or_else(|e| panic!("seed {seed} on {backend}: {op:?} failed: {e}"));
    }
    h
}

/// Cross-machine functional comparison: identical process lists,
/// identical mapped-page sets, identical memory contents (one probe
/// byte per line of every mapped page, covering fork visibility).
fn assert_functionally_equal(a: &SimHarness, b: &SimHarness, seed: u64) {
    assert_eq!(a.procs, b.procs, "seed {seed}: process lists diverged");
    for &asid in &a.procs {
        let pages_a = a.machine.os().pages(asid).expect("enumerate (overlay)");
        let pages_b = b.machine.os().pages(asid).expect("enumerate (seg)");
        let vpns_a: Vec<_> = pages_a.iter().map(|(vpn, _)| *vpn).collect();
        let vpns_b: Vec<_> = pages_b.iter().map(|(vpn, _)| *vpn).collect();
        assert_eq!(vpns_a, vpns_b, "seed {seed}: mapped pages diverged for asid {}", asid.raw());
        for vpn in vpns_a {
            for line in 0..LINES_PER_PAGE {
                let va = VirtAddr::new(vpn.raw() * PAGE_SIZE as u64 + (line * LINE_SIZE) as u64);
                let byte_a = a.machine.peek(asid, va);
                let byte_b = b.machine.peek(asid, va);
                assert_eq!(
                    byte_a,
                    byte_b,
                    "seed {seed}: asid {} va {:#x} diverged between backends",
                    asid.raw(),
                    va.raw()
                );
            }
        }
    }
}

/// 100 fixed seeds: loads, stores, forks, commits, flushes, reclaims,
/// and compactions behave identically across backends.
#[test]
fn backends_agree_functionally_over_100_seeds() {
    let mut overlay_diverged_somewhere = false;
    for seed in 0..100u64 {
        let ops = parity_ops(seed, 150);
        let a = run_on(BackendKind::Overlay, &ops, seed);
        let b = run_on(BackendKind::Seg, &ops, seed);
        assert_functionally_equal(&a, &b, seed);
        // The rival never builds overlays; the paper's backend may.
        assert_eq!(
            b.machine.overlay().overlay_count(),
            0,
            "seed {seed}: the seg backend grew an overlay"
        );
        overlay_diverged_somewhere |= a.machine.overlay().overlay_count() > 0
            || a.machine.snapshot().overlaying_writes.get() > 0;
    }
    // The corpus must actually exercise the overlay machinery on the
    // overlay side, or the parity above is vacuous.
    assert!(
        overlay_diverged_somewhere,
        "no seed drove the overlay backend through an overlaying write"
    );
}

/// Timing is allowed to differ — and does: the segmented walk is
/// cheaper than the radix walk by construction, so a TLB-miss-heavy
/// stream completes in fewer cycles on the rival. This pins that the
/// comparison rows in the bench exports measure a real difference.
#[test]
fn backends_differ_in_timing_not_function() {
    let seed = 7u64;
    let ops = parity_ops(seed, 300);
    let a = run_on(BackendKind::Overlay, &ops, seed);
    let b = run_on(BackendKind::Seg, &ops, seed);
    assert_functionally_equal(&a, &b, seed);
    let cycles_a = a.machine.snapshot().cycles;
    let cycles_b = b.machine.snapshot().cycles;
    assert_ne!(cycles_a, cycles_b, "identical cycle counts would make the lab comparison moot");
}
