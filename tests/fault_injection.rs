//! End-to-end fault injection (DESIGN.md "Fault model & degradation").
//!
//! The acceptance bar for graceful degradation: a fork/overlay workload
//! in which the OS refuses OMS grow chunks with ≥10 % probability must
//! run to completion with **zero data divergence** from the no-fault
//! run — the machine collapses cold overlays back into physical pages
//! instead of failing — while `OverlayStats::reclaims` shows the
//! pressure path actually ran.

use page_overlays::overlay::OverlayStats;
use page_overlays::sim::{Machine, SystemConfig};
use page_overlays::types::{AccessKind, Asid, FaultPlan, FaultSite, VirtAddr, Vpn};

const BASE_VPN: u64 = 0x100;
const PAGES: u64 = 24;
const PAGE: u64 = 4096;
const LINE: u64 = 64;

fn va(page: u64, line: u64) -> VirtAddr {
    VirtAddr::new((BASE_VPN + page) * PAGE + line * LINE)
}

/// Runs the workload: init 24 pages, fork, then the parent diverges on
/// a rolling subset of lines across several flush rounds (each flush
/// pushes dirty overlay lines into the OMS, which is where grow chunks
/// get requested — and, under the plan, refused). Returns the final
/// logical bytes of both address spaces plus the overlay stats.
fn run(plan: Option<FaultPlan>) -> (Vec<u8>, Vec<u8>, OverlayStats) {
    let mut config = SystemConfig::table2_overlay();
    // One-frame grow chunks: every ~4 KB of overlay growth asks the OS
    // for memory, so a probabilistic refusal actually gets queried.
    config.overlay.oms_chunk_frames = 1;
    let mut m = Machine::new(config).unwrap();
    if let Some(p) = plan {
        m.install_fault_plan(p);
    }
    let parent = m.spawn_process().unwrap();
    m.map_range(parent, Vpn::new(BASE_VPN), PAGES).unwrap();
    for page in 0..PAGES {
        for line in 0..64 {
            let v = (page * 7 + line * 13) as u8;
            m.poke(parent, va(page, line), v).unwrap();
        }
    }
    let child = m.fork(parent).unwrap();

    // Divergence in rounds: every round touches every page on a
    // different line window, then flushes, so earlier rounds' segments
    // sit cold in the OMS when later rounds hit refused grants.
    let mut now = 0;
    for round in 0..6u64 {
        for page in 0..PAGES {
            for i in 0..8u64 {
                let line = (round * 8 + i) % 64;
                // A few timed stores keep the cache/writeback eviction
                // path (and its reclaim-on-pressure handling) exercised.
                // They run first: the timed path pulls the line into the
                // cache under its overlay tag, so the poke below is a
                // plain update of an existing overlay line.
                if i == 0 {
                    now += m.access_at(now, parent, va(page, line), AccessKind::Write).unwrap();
                }
                m.poke(parent, va(page, line), (0x80 + round * 16 + i) as u8).unwrap();
            }
        }
        m.flush_overlays().unwrap();
        m.verify_invariants().unwrap();
    }

    let dump = |m: &Machine, asid: Asid| -> Vec<u8> {
        let mut out = Vec::with_capacity((PAGES * PAGE) as usize);
        for page in 0..PAGES {
            for byte in 0..PAGE {
                let addr = VirtAddr::new((BASE_VPN + page) * PAGE + byte);
                out.push(m.peek(asid, addr).unwrap());
            }
        }
        out
    };
    let p = dump(&m, parent);
    let c = dump(&m, child);
    (p, c, m.overlay_stats())
}

#[test]
fn grow_refusals_reclaim_instead_of_diverging() {
    let (p0, c0, base_stats) = run(None);
    let plan = FaultPlan::new(0xfa117).with_probability(FaultSite::OmsGrowRefused, 0.25);
    let (p1, c1, stats) = run(Some(plan));

    assert_eq!(p0, p1, "parent bytes diverged under injected grow refusals");
    assert_eq!(c0, c1, "child bytes diverged under injected grow refusals");
    assert!(
        stats.reclaims.get() > 0,
        "refused grants never drove a reclaim: injected={}, retries={}",
        stats.injected_faults.get(),
        stats.alloc_retries.get()
    );
    assert!(stats.reclaim_freed_bytes.get() > 0);
    assert!(stats.alloc_retries.get() > 0);
    assert!(stats.injected_faults.get() > 0, "plan installed but nothing fired");
    // The no-fault run pays nothing for the machinery.
    assert_eq!(base_stats.injected_faults.get(), 0);
    assert_eq!(base_stats.reclaims.get(), 0);
}

#[test]
fn mixed_fault_soup_preserves_isolation_and_invariants() {
    // Every site at once, low probability: transient DRAM retries and
    // OMT-cache scrubs are latency-only, allocation-class faults are
    // absorbed by reclaim — logical contents must still match the
    // clean run bit for bit.
    let plan = FaultPlan::new(42)
        .with_probability(FaultSite::OmsGrowRefused, 0.15)
        .with_probability(FaultSite::FrameAllocExhausted, 0.02)
        .with_probability(FaultSite::OmtCacheCorruption, 0.05)
        .with_probability(FaultSite::DramReadError, 0.05)
        .with_probability(FaultSite::TlbShootdownTimeout, 0.10);
    let (p0, c0, _) = run(None);
    let (p1, c1, stats) = run(Some(plan));
    assert_eq!(p0, p1);
    assert_eq!(c0, c1);
    assert!(stats.injected_faults.get() > 0);
}

#[test]
fn relocation_failure_aborts_compaction_cleanly_and_retry_succeeds() {
    // Fragment the store so a compaction pass has real work: one-line
    // overlays on 8 pages land 8 B256 segments in flush (VPN) order,
    // then committing the first 4 frees the *low* slots, leaving the
    // high segments as improving moves.
    let mut config = SystemConfig::table2_overlay();
    config.overlay.oms_chunk_frames = 1;
    let mut m = Machine::new(config).unwrap();
    let parent = m.spawn_process().unwrap();
    m.map_range(parent, Vpn::new(BASE_VPN), 8).unwrap();
    let _child = m.fork(parent).unwrap();
    for page in 0..8 {
        m.poke(parent, va(page, 0), 0xC0 ^ page as u8).unwrap();
    }
    m.flush_overlays().unwrap();
    for page in 0..4 {
        m.commit_overlay(parent, Vpn::new(BASE_VPN + page)).unwrap();
    }

    // The very first relocation copy fails: the pass must abort
    // gracefully — destination released, nothing moved, store sound.
    m.install_fault_plan(FaultPlan::new(7).at_queries(FaultSite::CompactionRelocationFailed, [0]));
    let aborted = m.compact_overlay_memory().unwrap();
    assert!(aborted.aborted, "injected copy failure did not abort the pass");
    assert_eq!(aborted.moves, 0, "moves landed before the first (failed) relocation");
    m.verify_invariants().unwrap();

    // The fault was one-shot; the retry must relocate for real.
    let retried = m.compact_overlay_memory().unwrap();
    assert!(!retried.aborted);
    assert!(retried.moves > 0, "nothing moved on retry despite freed low slots");
    m.verify_invariants().unwrap();

    // Overlay contents survived the failed pass and the successful one.
    for page in 0..8 {
        assert_eq!(m.peek(parent, va(page, 0)).unwrap(), 0xC0 ^ page as u8);
    }
}

#[test]
fn scheduled_faults_fire_exactly_once() {
    // A schedule pinned to one specific grow query (the 4th — by then
    // earlier grants have stocked the OMS, so reclaim has something to
    // collapse; refusing query 0 would correctly surface OutOfMemory
    // since an empty store has nothing to give back). Deterministic
    // regression anchor for the retry loop.
    let plan = FaultPlan::new(1).at_queries(FaultSite::OmsGrowRefused, [3]);
    let (p1, c1, stats) = run(Some(plan));
    let (p0, c0, _) = run(None);
    assert_eq!(p0, p1);
    assert_eq!(c0, c1);
    assert_eq!(stats.injected_faults.get(), 1);
}
