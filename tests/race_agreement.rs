//! Agreement between the multi-core machine and the PA-C
//! happens-before verifier (DESIGN.md §16).
//!
//! Two halves, mirroring the differential fuzzer's contract:
//!
//! * **Soundness of the clean direction** — a hundred seeded
//!   multi-core fuzz streams (1/2/4/8 cores) replay through the full
//!   differential harness and the concurrency verifier with zero PA-C
//!   findings: the machine's coherence annotation stream really does
//!   carry a race-free happens-before order, and the verifier does not
//!   invent races the machine never ran.
//! * **Sensitivity** — the seeded race canary (one remote OBitVector
//!   update delivered with its annotation suppressed, functional patch
//!   intact) is invisible to the byte oracle, the invariant sweep, and
//!   the refinement spec, and is caught by PA-C001 alone; the witness
//!   ddmin-shrinks to a small trace that round-trips through the trace
//!   format and still fires after re-parsing.

use page_overlays::analyze::verifier::{analyze_jsonl, replay_and_analyze, replay_events_jsonl};
use page_overlays::sim::{
    generate_mc_ops, read_trace, run_ops, shrink_by, write_trace, SystemConfig, TraceOp, VPN_BASE,
};
use page_overlays::types::VirtAddr;

/// The deterministic §4.3.3 victim pattern: core 1 caches the forked
/// page, core 0's overlaying store broadcasts the single-line update
/// (the canary's target), core 1 reads the line it never saw created.
fn canary_ops() -> Vec<TraceOp> {
    vec![
        TraceOp::Spawn,
        TraceOp::Map { proc_sel: 0, start: VPN_BASE, count: 2 },
        TraceOp::Fork { proc_sel: 0 },
        TraceOp::OnCore { core_sel: 1 },
        TraceOp::Load(VirtAddr::new(VPN_BASE << 12)),
        TraceOp::OnCore { core_sel: 0 },
        TraceOp::Store(VirtAddr::new(VPN_BASE << 12)),
        TraceOp::OnCore { core_sel: 1 },
        TraceOp::Load(VirtAddr::new(VPN_BASE << 12)),
    ]
}

/// 25 seeds at each of 1, 2, 4 and 8 cores — 100 streams — replayed
/// through the harness (byte oracle + invariants + refinement spec
/// after every op) and then through the concurrency verifier. Zero
/// findings: no false positives on clean runs at any core count.
#[test]
fn hundred_multicore_streams_replay_race_free() {
    for (ci, cores) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let config = SystemConfig { cores, ..SystemConfig::table2_overlay() };
        for s in 0..25u64 {
            let seed = (ci as u64) * 1000 + s;
            let ops = generate_mc_ops(seed, 100, cores);
            let report = replay_and_analyze(&config, &ops, &format!("cores {cores} seed {seed}"))
                .unwrap_or_else(|e| panic!("cores {cores} seed {seed}: replay failed: {e}"));
            assert!(
                report.findings.is_empty(),
                "cores {cores} seed {seed}: clean run must be PA-C clean:\n{}",
                report.to_human()
            );
        }
    }
}

/// The canary is caught by the concurrency verifier and by nothing
/// else: the armed replay returns a journal (meaning the byte oracle,
/// the per-op invariant sweep, and the refinement spec all stayed
/// green), and every finding on that journal is PA-C001.
#[test]
fn race_canary_is_caught_only_by_the_concurrency_verifier() {
    let config = SystemConfig { cores: 2, ..SystemConfig::table2_overlay() };
    let ops = canary_ops();
    // Unarmed, machine and verifier agree the stream is race-free.
    run_ops(&config, None, &ops, false).expect("unarmed differential run");
    let control = replay_and_analyze(&config, &ops, "control").expect("control replay");
    assert!(control.findings.is_empty(), "{}", control.to_human());
    // Armed, the functional oracles still see nothing…
    let journal = replay_events_jsonl(&config, &ops, true)
        .expect("armed replay must stay functionally green");
    // …and the happens-before analysis sees exactly the lost edge.
    let report = analyze_jsonl(&journal, "canary");
    assert!(
        report.findings.iter().any(|f| f.rule == "PA-C001"),
        "the suppressed update annotation went undetected:\n{}",
        report.to_human()
    );
    assert!(
        report.findings.iter().all(|f| f.rule == "PA-C001"),
        "only the race rule may fire on the canary:\n{}",
        report.to_human()
    );
}

/// Delta debugging under the "PA-C001 still fires" predicate shrinks a
/// canary stream buried in fuzz noise to a ≤40-op witness that
/// round-trips through the trace-v3 format and still fires when
/// re-parsed and re-replayed.
#[test]
fn race_canary_shrinks_to_a_replayable_witness() {
    let config = SystemConfig { cores: 2, ..SystemConfig::table2_overlay() };
    let mut ops = canary_ops();
    ops.extend(generate_mc_ops(0xF00D, 60, 2));
    let fires = |cand: &[TraceOp]| {
        replay_events_jsonl(&config, cand, true)
            .map(|j| analyze_jsonl(&j, "witness").findings.iter().any(|f| f.rule == "PA-C001"))
            .unwrap_or(false)
    };
    assert!(fires(&ops), "the buried canary must fire before shrinking");
    let shrunk = shrink_by(&ops, fires);
    assert!(shrunk.len() <= 40, "witness stuck at {} ops", shrunk.len());
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &shrunk).expect("serialize witness");
    let parsed = read_trace(bytes.as_slice()).expect("witness must re-parse");
    assert_eq!(parsed, shrunk, "trace round-trip must be lossless");
    assert!(fires(&parsed), "the re-parsed witness must still fire");
}
