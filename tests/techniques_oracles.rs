//! Property tests for the §5.3 techniques (DESIGN.md invariants 7-8):
//! dedup, checkpointing and speculation all reconstruct a flat oracle;
//! TLB coherence keeps every TLB's OBitVector consistent without
//! shootdowns.

use page_overlays::techniques::{Checkpointer, DifferenceEngine, SpeculativeRegion};
use page_overlays::tlb::{
    broadcast_overlaying_write, OverlayingReadExclusive, Tlb, TlbConfig, TlbEntry,
};
use page_overlays::types::{Asid, LineData, OBitVector, Opn, Ppn, Vpn};
use page_overlays::vm::{Pte, PteFlags};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dedup: arbitrary page families reconstruct bit-exactly, at any
    /// threshold.
    #[test]
    fn dedup_reconstructs_all_pages(
        diffs in prop::collection::vec(prop::collection::vec((0usize..64, any::<u8>()), 0..8), 1..12),
        threshold in 1usize..=64,
    ) {
        let mut engine = DifferenceEngine::new(threshold);
        let template = [LineData::splat(0x5A); 64];
        let mut originals = Vec::new();
        for (i, page_diffs) in diffs.iter().enumerate() {
            let mut page = template;
            for &(line, fill) in page_diffs {
                page[line] = LineData::splat(fill);
            }
            let opn = Opn::encode(Asid::new(1), Vpn::new(i as u64));
            engine.insert_page(opn, &page).unwrap();
            originals.push((opn, page));
        }
        for (opn, page) in &originals {
            prop_assert_eq!(&engine.read_page(*opn).unwrap(), page);
        }
        // Dedup never uses more memory than the naive scheme plus one
        // base page of slack.
        prop_assert!(engine.memory_bytes() <= engine.naive_bytes() + 4096);
    }

    /// Checkpointing: restore(i) equals a flat replay oracle at every
    /// checkpoint index.
    #[test]
    fn checkpoint_restore_matches_oracle(
        intervals in prop::collection::vec(
            prop::collection::vec((0u64..6, 0usize..64, any::<u8>()), 0..20),
            1..6,
        ),
    ) {
        let mut ck = Checkpointer::new(6);
        let mut oracle: BTreeMap<(u64, usize), u8> = BTreeMap::new();
        let mut snapshots = Vec::new();
        for writes in &intervals {
            for &(page, line, fill) in writes {
                ck.write(page, line, LineData::splat(fill)).unwrap();
                oracle.insert((page, line), fill);
            }
            ck.take_checkpoint().unwrap();
            snapshots.push(oracle.clone());
        }
        for (i, snap) in snapshots.iter().enumerate() {
            let image = ck.restore(i);
            for page in 0..6u64 {
                for (line, &got) in image[page as usize].iter().enumerate() {
                    let expect = snap
                        .get(&(page, line))
                        .map(|&f| LineData::splat(f))
                        .unwrap_or(LineData::zeroed());
                    prop_assert_eq!(got, expect,
                        "checkpoint {}, page {}, line {}", i, page, line);
                }
            }
        }
    }

    /// Speculation: any sequence of (txn, writes, commit|abort) matches
    /// a flat oracle that applies only committed transactions.
    #[test]
    fn speculation_matches_commit_only_oracle(
        txns in prop::collection::vec(
            (prop::collection::vec((0u64..4, 0usize..64, any::<u8>()), 1..15), any::<bool>(), any::<bool>()),
            1..8,
        ),
    ) {
        let mut region = SpeculativeRegion::new(4);
        let mut oracle: BTreeMap<(u64, usize), u8> = BTreeMap::new();
        for (writes, commit, evict) in &txns {
            region.begin().unwrap();
            for &(page, line, fill) in writes {
                region.spec_write(page, line, LineData::splat(fill)).unwrap();
            }
            if *evict {
                region.evict_speculative_state().unwrap();
            }
            if *commit {
                region.commit().unwrap();
                for &(page, line, fill) in writes {
                    oracle.insert((page, line), fill);
                }
            } else {
                region.abort().unwrap();
            }
        }
        for page in 0..4u64 {
            for line in 0..64usize {
                let expect = oracle
                    .get(&(page, line))
                    .map(|&f| LineData::splat(f))
                    .unwrap_or(LineData::zeroed());
                prop_assert_eq!(region.read(page, line).unwrap(), expect);
            }
        }
    }

    /// TLB coherence (invariant 7): after arbitrary overlaying-write
    /// broadcasts, every TLB that caches a page holds exactly the lines
    /// broadcast for that page, and zero shootdowns occurred.
    #[test]
    fn tlb_coherence_without_shootdowns(
        cached in prop::collection::vec((0usize..4, 0u64..8), 1..16),
        updates in prop::collection::vec((0u64..8, 0usize..64), 1..40),
    ) {
        let asid = Asid::new(5);
        let mut tlbs: Vec<Tlb> = (0..4).map(|_| Tlb::new(TlbConfig::table2())).collect();
        let entry = |vpn: u64| TlbEntry {
            asid,
            vpn: Vpn::new(vpn),
            pte: Pte {
                ppn: Ppn::new(vpn + 100),
                flags: PteFlags { present: true, writable: false, cow: true, overlay_enabled: true },
            },
            obitvec: OBitVector::EMPTY,
        };
        let mut holds: std::collections::BTreeSet<(usize, u64)> = Default::default();
        for &(tlb_idx, vpn) in &cached {
            tlbs[tlb_idx].fill(entry(vpn));
            holds.insert((tlb_idx, vpn));
        }
        let mut expected: BTreeMap<u64, OBitVector> = BTreeMap::new();
        for &(vpn, line) in &updates {
            let opn = Opn::encode(asid, Vpn::new(vpn));
            broadcast_overlaying_write(&mut tlbs, OverlayingReadExclusive::new(opn, line)).unwrap();
            expected.entry(vpn).or_insert(OBitVector::EMPTY).set(line);
        }
        for &(tlb_idx, vpn) in &holds {
            if let Some(e) = tlbs[tlb_idx].peek(asid, Vpn::new(vpn)) {
                let want = expected.get(&vpn).copied().unwrap_or(OBitVector::EMPTY);
                prop_assert_eq!(e.obitvec, want, "tlb {} vpn {:#x}", tlb_idx, vpn);
            }
        }
        for tlb in &tlbs {
            prop_assert_eq!(tlb.stats().shootdowns.get(), 0);
        }
    }
}
