//! Acceptance tests for the po-telemetry subsystem: determinism of the
//! exported artifacts, zero observable effect on simulation state, and
//! consistency between the metrics registry and the components' own
//! statistics counters.

use page_overlays::sim::{
    generate_ops, run_fork_experiment_instrumented, run_trace, Machine, SimHarness, SystemConfig,
};
use page_overlays::sparse::{gen as matrix_gen, OverlayMatrix, TimedSpmv};
use page_overlays::telemetry::{Layer, TelemetrySink};
use page_overlays::workloads::spec_suite;

/// Asserts every telemetry counter against the component statistic it
/// mirrors, for whatever state the machine ended up in.
fn assert_counters_match(sink: &TelemetrySink, machine: &Machine, ctx: &str) {
    let mut tlb_l1 = 0;
    let mut tlb_l2 = 0;
    let mut tlb_miss = 0;
    for core in 0..machine.cores() {
        let s = machine.tlb_of(core).stats();
        tlb_l1 += s.l1_hits.get();
        tlb_l2 += s.l2_hits.get();
        tlb_miss += s.misses.get();
    }
    let cache = machine.caches().stats();
    let dram = machine.dram().stats();
    let omt = machine.overlay().omt_cache().stats();
    let ovl = machine.overlay().stats();
    let store = machine.overlay().store().stats();
    let pairs: [(&str, u64); 12] = [
        ("tlb.l1_hits", tlb_l1),
        ("tlb.l2_hits", tlb_l2),
        ("tlb.misses", tlb_miss),
        ("cache.accesses", cache.accesses.get()),
        ("cache.misses", cache.misses.get()),
        ("dram.reads", dram.reads.get()),
        ("dram.writes", dram.writes.get()),
        ("omt_cache.hits", omt.hits.get()),
        ("omt_cache.misses", omt.misses.get()),
        ("overlay.overlaying_writes", ovl.overlaying_writes.get()),
        ("overlay.reclaims", ovl.reclaims.get()),
        ("oms.allocations", store.allocations.get()),
    ];
    for (name, stat) in pairs {
        assert_eq!(
            sink.counter(name),
            stat,
            "{ctx}: telemetry counter {name} disagrees with the component statistic"
        );
    }
}

/// Drives the §5.1 fork scenario on a machine the test keeps hold of,
/// so counters can be checked against every component's statistics.
fn drive_fork(sink: TelemetrySink) -> Machine {
    let spec = spec_suite().into_iter().find(|s| s.name == "mcf").expect("mcf in suite");
    let warmup = spec.generate_warmup(20_000, 7);
    let post = spec.generate_post_fork(30_000, 7);
    let mut machine = Machine::new(SystemConfig::table2_overlay()).expect("machine");
    machine.install_telemetry(sink);
    let parent = machine.spawn_process().expect("spawn");
    machine.map_range(parent, spec.base_vpn(), spec.mapped_pages(30_000)).expect("map");
    run_trace(&mut machine, parent, &warmup).expect("warmup");
    machine.fork(parent).expect("fork");
    run_trace(&mut machine, parent, &post).expect("post");
    machine.flush_overlays().expect("flush");
    machine
}

#[test]
fn counters_match_stats_over_fork_workload() {
    let sink = TelemetrySink::active();
    let machine = drive_fork(sink.clone());
    assert_counters_match(&sink, &machine, "fork/mcf");
    assert!(sink.counter("overlay.overlaying_writes") > 0, "OoW fork must overlay");
}

#[test]
fn counters_match_stats_over_fuzz_workload() {
    for seed in [3, 17] {
        let sink = TelemetrySink::active();
        let mut h = SimHarness::new(SystemConfig::table2_overlay()).expect("harness");
        h.machine.install_telemetry(sink.clone());
        for op in &generate_ops(seed, 400) {
            h.apply(op).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert_counters_match(&sink, &h.machine, &format!("fuzz seed {seed}"));
    }
}

#[test]
fn counters_are_internally_consistent_over_spmv() {
    let triplets = matrix_gen::clustered(40, 512, 20_000, 8, true, 3);
    let ovl = OverlayMatrix::from_triplets(&triplets);
    let sink = TelemetrySink::active();
    let timed = TimedSpmv::new(SystemConfig::table2_overlay()).with_telemetry(sink.clone());
    timed.time_overlay(&ovl).expect("overlay SpMV");

    // Every timed memory op runs exactly one TLB lookup and (because the
    // SpMV trace never triggers overlay/CoW side fetches) one cache
    // access; the span tracker saw the same ops.
    let stack = sink.cpi_stack().expect("active sink");
    let tlb =
        sink.counter("tlb.l1_hits") + sink.counter("tlb.l2_hits") + sink.counter("tlb.misses");
    assert_eq!(tlb, stack.ops(), "one TLB lookup per access span");
    assert_eq!(sink.counter("cache.accesses"), stack.ops(), "one cache access per access span");
    // Reads through the overlay address space resolve at the controller.
    let omt = sink.counter("omt_cache.hits") + sink.counter("omt_cache.misses");
    assert!(omt > 0, "overlay reads must consult the OMT cache");
    assert!(sink.counter("oms.allocations") > 0, "seeded overlays allocate OMS segments");
}

#[test]
fn journal_is_byte_identical_across_identical_seeded_runs() {
    let run = || {
        let sink = TelemetrySink::active();
        let mut h = SimHarness::new(SystemConfig::table2_overlay()).expect("harness");
        h.machine.install_telemetry(sink.clone());
        for op in &generate_ops(11, 300) {
            h.apply(op).expect("op");
        }
        (sink.journal_jsonl(), sink.chrome_trace_json(), sink.run_report("t"))
    };
    let (j1, c1, r1) = run();
    let (j2, c2, r2) = run();
    assert_eq!(j1, j2, "JSONL journals must be byte-identical");
    assert_eq!(c1, c2, "Chrome traces must be byte-identical");
    assert_eq!(r1, r2, "run reports must be byte-identical");
    assert!(j1.lines().count() > 100, "journal must actually contain events");
}

#[test]
fn fork_experiment_journal_is_deterministic() {
    let run = || {
        let spec = spec_suite().into_iter().find(|s| s.name == "Gems").expect("Gems in suite");
        let sink = TelemetrySink::with_capacity(16_384, 16_384);
        run_fork_experiment_instrumented(
            SystemConfig::table2_overlay(),
            spec.base_vpn(),
            spec.mapped_pages(20_000),
            &spec.generate_warmup(10_000, 5),
            &spec.generate_post_fork(20_000, 5),
            sink.clone(),
        )
        .expect("fork experiment");
        sink.journal_jsonl()
    };
    assert_eq!(run(), run());
}

#[test]
fn telemetry_on_and_off_reach_identical_machine_snapshots() {
    let ops = generate_ops(23, 350);
    let mut on = SimHarness::new(SystemConfig::table2_overlay()).expect("harness");
    on.enable_telemetry(256);
    let mut off = SimHarness::new(SystemConfig::table2_overlay()).expect("harness");
    for (i, op) in ops.iter().enumerate() {
        on.apply(op).expect("telemetry-on op");
        off.apply(op).expect("telemetry-off op");
        // Lockstep: state must agree at every step, not just at the end.
        if i % 50 == 0 || i + 1 == ops.len() {
            assert_eq!(
                on.machine.save_snapshot(),
                off.machine.save_snapshot(),
                "telemetry must not perturb simulation state (diverged by op {i})"
            );
        }
    }
}

#[test]
fn chrome_trace_is_format_valid_for_fork_workload() {
    let sink = TelemetrySink::with_capacity(8192, 8192);
    drive_fork(sink.clone());
    let trace = sink.chrome_trace_json();
    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace.ends_with("]}"));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count(), "balanced braces");
    assert_eq!(trace.matches('[').count(), trace.matches(']').count(), "balanced brackets");
    for needle in ["\"ph\":\"M\"", "\"ph\":\"X\"", "\"thread_name\"", "\"name\":\"store\""] {
        assert!(trace.contains(needle), "trace must contain {needle}");
    }
    // The report decomposes accesses into per-layer contributions.
    let stack = sink.cpi_stack().expect("active sink");
    assert!(stack.layer_cycles(Layer::Tlb) > 0);
    assert!(stack.layer_cycles(Layer::Cache) > 0);
    assert!(stack.layer_cycles(Layer::Dram) > 0);
}
