//! Property tests for the sparse substrate (DESIGN.md invariant 6):
//! dense, CSR and overlay-backed SpMV agree for arbitrary matrices, and
//! dynamic insertion preserves equivalence.

use page_overlays::sparse::{CsrMatrix, OverlayMatrix, TripletMatrix};
use proptest::prelude::*;

const ROWS: usize = 24;
const COLS: usize = 64;

fn triplets_strategy() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0usize..ROWS, 0usize..COLS, -100i32..100), 0..120)
        .prop_map(|v| v.into_iter().map(|(r, c, x)| (r, c, x as f64)).collect())
}

fn build(entries: &[(usize, usize, f64)]) -> TripletMatrix {
    let mut t = TripletMatrix::new(ROWS, COLS);
    for &(r, c, v) in entries {
        t.push(r, c, v);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spmv_representations_agree(entries in triplets_strategy(), xs in prop::collection::vec(-50i32..50, COLS)) {
        let t = build(&entries);
        let x: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
        let dense = t.to_dense().spmv(&x);
        let csr = CsrMatrix::from_triplets(&t).spmv(&x);
        let ovl = OverlayMatrix::from_triplets(&t).spmv(&x);
        // Integer-valued inputs: results are exact, so equality is fair.
        prop_assert_eq!(&dense, &csr);
        prop_assert_eq!(&csr, &ovl);
    }

    #[test]
    fn element_access_agrees(entries in triplets_strategy()) {
        let t = build(&entries);
        let dense = t.to_dense();
        let ovl = OverlayMatrix::from_triplets(&t);
        for r in 0..ROWS {
            for c in 0..COLS {
                prop_assert_eq!(dense.get(r, c), ovl.get(r, c), "({}, {})", r, c);
            }
        }
    }

    #[test]
    fn dynamic_updates_preserve_equivalence(
        entries in triplets_strategy(),
        updates in prop::collection::vec((0usize..ROWS, 0usize..COLS, -100i32..100), 1..30),
        xs in prop::collection::vec(-10i32..10, COLS),
    ) {
        let t = build(&entries);
        let mut dense = t.to_dense();
        let mut ovl = OverlayMatrix::from_triplets(&t);
        for &(r, c, v) in &updates {
            dense.set(r, c, v as f64);
            ovl.set(r, c, v as f64);
        }
        let x: Vec<f64> = xs.into_iter().map(|v| v as f64).collect();
        prop_assert_eq!(dense.spmv(&x), ovl.spmv(&x));
        prop_assert_eq!(dense.nnz(), count_nnz(&ovl));
    }

    /// Storage invariant: stored lines are exactly the non-zero lines,
    /// and the OBitVectors agree with them.
    #[test]
    fn overlay_stores_exactly_nonzero_lines(entries in triplets_strategy()) {
        let t = build(&entries);
        let ovl = OverlayMatrix::from_triplets(&t);
        let dense = t.to_dense();
        let lines_per_row = COLS / 8;
        let total_lines = ROWS * lines_per_row;
        let mut expected = 0;
        for line in 0..total_lines {
            let base = line * 8;
            let nonzero = (0..8).any(|k| {
                let flat = base + k;
                dense.get(flat / COLS, flat % COLS) != 0.0
            });
            if nonzero {
                expected += 1;
                let page = line / 64;
                prop_assert!(ovl.obitvec(page).contains(line % 64));
            }
        }
        prop_assert_eq!(ovl.nonzero_lines(), expected);
    }
}

fn count_nnz(ovl: &OverlayMatrix) -> usize {
    let mut n = 0;
    for r in 0..ovl.rows() {
        for c in 0..ovl.cols() {
            if ovl.get(r, c) != 0.0 {
                n += 1;
            }
        }
    }
    n
}

#[test]
fn csr_insert_equivalence_on_a_fixed_case() {
    let mut t = TripletMatrix::new(4, 16);
    t.push(0, 3, 1.0);
    t.push(2, 8, 2.0);
    let mut csr = CsrMatrix::from_triplets(&t);
    let mut dense = t.to_dense();
    for (r, c, v) in [(1usize, 1usize, 5.0f64), (0, 0, -1.0), (3, 15, 4.0), (0, 3, 9.0)] {
        csr.insert(r, c, v);
        dense.set(r, c, v);
    }
    let x = vec![1.0; 16];
    assert_eq!(csr.spmv(&x), dense.spmv(&x));
}

#[test]
fn empty_matrix_is_fine_everywhere() {
    let t = TripletMatrix::new(8, 16);
    let x = vec![1.0; 16];
    assert_eq!(t.to_dense().spmv(&x), vec![0.0; 8]);
    assert_eq!(CsrMatrix::from_triplets(&t).spmv(&x), vec![0.0; 8]);
    let ovl = OverlayMatrix::from_triplets(&t);
    assert_eq!(ovl.spmv(&x), vec![0.0; 8]);
    assert_eq!(ovl.nonzero_lines(), 0);
    assert_eq!(ovl.locality(), 0.0);
}
