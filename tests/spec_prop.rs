//! Property tests for the executable specification (`po-spec`,
//! DESIGN.md §13): the per-page overlay mask must behave exactly like
//! the plain-`u64` set model the OBitVector is tested against, the spec
//! must be bit-for-bit deterministic, and — as a positive control for
//! the whole refinement pipeline — a machine that skips one OMS free
//! must be caught *by the spec oracle* within a bounded number of ops
//! and shrink to a minimal replayable trace.

use page_overlays::sim::{
    generate_ops, read_trace, write_trace, SimHarness, SystemConfig, TraceOp,
};
use page_overlays::spec::{SpecOp, SpecOutcome, SpecParams, SpecState};
use proptest::prelude::*;

/// A spec state with one forked pair so overlays are enabled (overlay
/// mode turns `enabled` on at fork, mirroring the OS model). Returns
/// the state and the parent pid; `VPNS` pages are mapped.
const VPNS: u64 = 4;

fn forked_state() -> (SpecState, usize) {
    let mut s = SpecState::new(SpecParams {
        overlay_mode: true,
        promote_threshold: 64,
        min_seg_bytes: 256,
    });
    let SpecOutcome::Spawned { pid } = s.step(SpecOp::Spawn) else { panic!("spawn") };
    for vpn in 0..VPNS {
        assert_eq!(s.step(SpecOp::Map { pid, vpn }), SpecOutcome::Applied);
    }
    let SpecOutcome::Spawned { .. } = s.step(SpecOp::Fork { parent: pid }) else { panic!("fork") };
    (s, pid)
}

/// The reference model for one page: its overlay mask as a plain `u64`
/// plus the two flag bits the write route depends on.
#[derive(Clone, Copy)]
struct PageModel {
    mask: u64,
    writable: bool,
    cow: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Seeds, untimed writes, commits, and discards against the u64
    /// model: after every op each page's `overlay_raw` must equal the
    /// model mask, and a write's reported route must match the model's
    /// routing predicate (line present, or CoW-protected page).
    #[test]
    fn overlay_masks_match_u64_model(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..96)
    ) {
        let (mut s, pid) = forked_state();
        let mut model = vec![PageModel { mask: 0, writable: false, cow: true }; VPNS as usize];
        for &(code, raw_vpn, raw_line) in &ops {
            let vpn = (raw_vpn as u64) % VPNS;
            let line = raw_line as usize % 64;
            let m = &mut model[vpn as usize];
            match code % 4 {
                0 => {
                    // Untimed write: overlay route iff the line is
                    // already overlaid or the page is CoW-protected;
                    // a base write to a CoW page privatises it.
                    let expect_overlay = (m.mask >> line) & 1 == 1 || (m.cow && !m.writable);
                    let out = s.step(SpecOp::Write { pid, vpn, line, timed: false });
                    prop_assert_eq!(
                        out,
                        SpecOutcome::Wrote { overlay_route: expect_overlay, promoted: false }
                    );
                    if expect_overlay {
                        m.mask |= 1 << line;
                    } else if !m.writable {
                        m.writable = true;
                        m.cow = false;
                    }
                }
                1 => {
                    s.step(SpecOp::SeedLine { pid, vpn, line });
                    m.mask |= 1 << line;
                }
                2 => {
                    // Committing an empty overlay is a NoOp — no
                    // privatisation happens.
                    s.step(SpecOp::Commit { pid, vpn });
                    if m.mask != 0 {
                        m.mask = 0;
                        m.writable = true;
                        m.cow = false;
                    }
                }
                _ => {
                    s.step(SpecOp::Discard { pid, vpn });
                    m.mask = 0;
                }
            }
            for (v, pm) in model.iter().enumerate() {
                prop_assert_eq!(s.overlay_raw(pid, v as u64), pm.mask, "page {}", v);
            }
        }
    }

    /// Same op sequence ⇒ byte-identical `Debug` encoding: the spec has
    /// no hidden nondeterminism (iteration order, allocation ids).
    #[test]
    fn spec_is_deterministic(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..96)
    ) {
        let run = || {
            let (mut s, pid) = forked_state();
            for &(code, raw_vpn, raw_line) in &ops {
                let vpn = (raw_vpn as u64) % VPNS;
                let line = raw_line as usize % 64;
                match code % 5 {
                    0 => { s.step(SpecOp::Write { pid, vpn, line, timed: true }); }
                    1 => { s.step(SpecOp::SeedLine { pid, vpn, line }); }
                    2 => { s.step(SpecOp::Commit { pid, vpn }); }
                    3 => { s.step(SpecOp::Discard { pid, vpn }); }
                    _ => { s.step(SpecOp::Fork { parent: pid }); }
                }
            }
            s.encode()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Drives `ops` through a harness, arming the one-shot OMS-free skip
/// just before the final op. Returns the first error.
fn run_with_leak_before_last(config: &SystemConfig, ops: &[TraceOp]) -> Result<(), String> {
    let mut h = SimHarness::new(config.clone()).map_err(|e| format!("harness: {e:?}"))?;
    for (i, op) in ops.iter().enumerate() {
        if i + 1 == ops.len() {
            h.machine.set_inject_oms_leak(true);
        }
        h.apply(op).map_err(|e| format!("op {i}: {e}"))?;
    }
    h.check_all()
}

/// The canary: on a seeded stream, a machine that skips one OMS free
/// must be flagged by the *refinement* check (not the byte oracle, not
/// an internal invariant sweep), and delta debugging against the leaky
/// runner must shrink the stream to a minimal trace that still replays
/// to the same refinement violation.
///
/// The leak is armed once the stream has put overlay bytes into the
/// OMS, and the trace ends in a `Reclaim`: collapsing every overlay
/// drops the spec's segment-ladder bound to zero while the machine
/// still holds the leaked segment — the gap the refinement check sees
/// at that very op (the bound's slack under lazy OMS allocation is
/// exactly zero once no overlay survives). Streams whose reclaim
/// leaves overlays alive hide the leak under that slack and are
/// skipped.
#[test]
fn oms_leak_canary_is_caught_by_refinement_and_shrinks() {
    let config = SystemConfig::table2_overlay();
    let fails = |cand: &[TraceOp]| {
        matches!(
            run_with_leak_before_last(&config, cand),
            Err(e) if e.contains("spec refinement violated")
        )
    };

    let mut caught = None;
    'seeds: for seed in 0..5u64 {
        let stream = generate_ops(seed, 300);
        let mut h = SimHarness::new(config.clone()).expect("harness");
        for (i, op) in stream.iter().enumerate() {
            h.apply(op).expect("clean prefix diverged");
            if h.machine.overlay().overlay_memory_bytes() > 0 {
                let mut ops = stream[..=i].to_vec();
                ops.push(TraceOp::Reclaim);
                if fails(&ops) {
                    caught = Some(ops);
                    break 'seeds;
                }
                continue 'seeds;
            }
        }
    }
    let ops = caught.expect("no seed in 0..5 produced a refinement-attributed leak within 300 ops");
    let mut cur = ops;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.drain(i..(i + chunk).min(cand.len()));
            if fails(&cand) {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    assert!(cur.len() <= 40, "canary shrunk only to {} ops: {cur:?}", cur.len());

    // The minimal trace survives the trace format and still fails.
    let mut buf = Vec::new();
    write_trace(&mut buf, &cur).expect("write trace");
    let replayed = read_trace(buf.as_slice()).expect("read trace");
    assert_eq!(replayed, cur);
    assert!(fails(&replayed), "replayed minimal canary trace no longer fails");

    // Sanity: without the leak the same stream is clean.
    let mut h = SimHarness::new(config).expect("harness");
    for op in &replayed {
        h.apply(op).expect("clean run of the minimal trace diverged");
    }
}
