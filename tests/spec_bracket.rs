//! The three-way agreement between po-analyze's abstract overlay
//! lattice, the executable spec (`po-spec`), and the concrete machine
//! (DESIGN.md §13): while the abstract state stays precise, every
//! page's overlay mask must satisfy
//!
//! ```text
//! overlay.must  ⊆  spec overlay_raw  ⊆  overlay.may
//! ```
//!
//! The spec mirror is stepped in lockstep by `SimHarness::apply` and
//! refinement-checked against the machine after every op, so this
//! bracket pins the *abstract interpreter* against the *specification*
//! — the two ends of the project's soundness story — with the machine
//! as the common witness. A dirty fixture perturbs the spec on both
//! sides of the bracket and demands the check actually fires.

use po_analyze::verifier::AbsState;
use po_analyze::{verify_ops, Verdict, VerifierOptions};
use po_sim::{generate_ops, SimHarness, SystemConfig, TraceOp, VPN_BASE};
use po_spec::{SpecOp, SpecState};

/// Collects every page where the bracket `must ⊆ spec ⊆ may` fails.
/// Abstract pages are keyed by process *index*, which equals the spec
/// pid (both follow spawn order), so the two key spaces line up
/// directly. Returns human-readable violations instead of panicking so
/// the dirty fixture can assert on them.
fn bracket_violations(state: &AbsState, spec: &SpecState) -> Vec<String> {
    let mut out = Vec::new();
    for (&(p, vpn), page) in &state.pages {
        let spec_mask = spec.overlay_raw(p, vpn);
        if page.overlay.must & !spec_mask != 0 {
            out.push(format!(
                "p{p} vpn {vpn:#x}: must {:#018x} not all in spec {spec_mask:#018x}",
                page.overlay.must
            ));
        }
        if spec_mask & !page.overlay.may != 0 {
            out.push(format!(
                "p{p} vpn {vpn:#x}: spec {spec_mask:#018x} exceeds may {:#018x}",
                page.overlay.may
            ));
        }
    }
    out
}

fn bracket_over_seeds(config: &SystemConfig, seeds: u64, label: &str) {
    let mut precise = 0usize;
    for seed in 0..seeds {
        let ops = generate_ops(seed, 120 + (seed as usize % 5) * 20);
        let ctx = format!("{label} seed {seed}");

        let mut harness = SimHarness::new(config.clone()).expect("machine construction");
        for (i, op) in ops.iter().enumerate() {
            harness.apply(op).unwrap_or_else(|e| panic!("{ctx}: op {i}: {e}"));
        }

        let analysis = verify_ops(config, &ops, &VerifierOptions::default(), &ctx);
        assert_eq!(analysis.verdict, Verdict::Accept, "{ctx}: generated traces verify");
        if analysis.state.degraded || analysis.state.collapsed {
            continue;
        }
        precise += 1;
        let violations = bracket_violations(&analysis.state, harness.spec.state());
        assert!(violations.is_empty(), "{ctx}: bracket violated:\n{}", violations.join("\n"));
    }
    assert!(
        precise >= seeds as usize / 2,
        "{label}: only {precise}/{seeds} traces stayed precise — the bracket test is vacuous"
    );
}

#[test]
fn abstract_lattice_brackets_spec_overlay_mode() {
    bracket_over_seeds(&SystemConfig::table2_overlay(), 48, "overlay");
}

#[test]
fn abstract_lattice_brackets_spec_cow_mode() {
    bracket_over_seeds(&SystemConfig::table2(), 16, "cow");
}

/// Negative control: a spec state that drifts from the machine on
/// either side of the bracket must be reported. The fixture seeds one
/// overlay line (a `must` bit in the abstract state, a set bit in the
/// spec), then perturbs a *copy* of the spec both ways:
///
/// * discarding the page drops the must-line → lower-bound violation;
/// * seeding a line into a page the analyzer proved overlay-free
///   (`may == 0`) → upper-bound violation.
#[test]
fn dirty_fixture_trips_both_bracket_directions() {
    let config = SystemConfig::table2_overlay();
    let ops = [
        TraceOp::Spawn,
        TraceOp::Map { proc_sel: 0, start: VPN_BASE, count: 2 },
        TraceOp::Fork { proc_sel: 0 },
        TraceOp::SeedLine { proc_sel: 0, vpn: VPN_BASE, line: 7, value: 0xC1 },
    ];
    let mut harness = SimHarness::new(config.clone()).expect("machine construction");
    for op in &ops {
        harness.apply(op).expect("fixture trace replays");
    }
    let analysis = verify_ops(&config, &ops, &VerifierOptions::default(), "dirty fixture");
    assert_eq!(analysis.verdict, Verdict::Accept);
    let state = &analysis.state;
    assert!(!state.degraded && !state.collapsed, "fixture must stay precise");

    // Preconditions: the seeded line is a must-bit, the neighbour page
    // is proved overlay-free, and the honest spec passes the bracket.
    let page = state.pages.get(&(0, VPN_BASE)).expect("seeded page tracked");
    assert_eq!(page.overlay.must & (1 << 7), 1 << 7, "seed line is a must-line");
    let neighbour = state.pages.get(&(0, VPN_BASE + 1)).expect("neighbour page tracked");
    assert_eq!(neighbour.overlay.may, 0, "neighbour proved overlay-free");
    assert!(bracket_violations(state, harness.spec.state()).is_empty());

    // Lower bound: discard the seeded page behind the analyzer's back.
    let mut dropped = harness.spec.state().clone();
    dropped.step(SpecOp::Discard { pid: 0, vpn: VPN_BASE });
    let violations = bracket_violations(state, &dropped);
    assert!(
        violations.iter().any(|v| v.contains("must") && v.contains("not all in spec")),
        "dropped must-line went unreported: {violations:?}"
    );

    // Upper bound: invent an overlay line the analyzer excluded.
    let mut inflated = harness.spec.state().clone();
    inflated.step(SpecOp::SeedLine { pid: 0, vpn: VPN_BASE + 1, line: 3 });
    let violations = bracket_violations(state, &inflated);
    assert!(
        violations.iter().any(|v| v.contains("exceeds may")),
        "invented overlay line went unreported: {violations:?}"
    );
}
