//! Property tests for [`OBitVector`] against a plain `u64` reference
//! model, plus snapshot round-trip coverage of the raw representation.

use page_overlays::types::snapshot::{SnapshotReader, SnapshotWriter};
use page_overlays::types::OBitVector;
use proptest::prelude::*;

/// The reference model: bit `i` of a `u64` ⇔ line `i` in the overlay.
fn model_of(ops: &[(u8, u8)]) -> (OBitVector, u64) {
    let mut v = OBitVector::EMPTY;
    let mut m = 0u64;
    for &(code, raw_line) in ops {
        let line = raw_line as usize % 64;
        match code % 3 {
            0 => {
                v.set(line);
                m |= 1 << line;
            }
            1 => {
                v.clear(line);
                m &= !(1 << line);
            }
            _ => assert_eq!(v.contains(line), (m >> line) & 1 == 1),
        }
    }
    (v, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_u64_model(ops in prop::collection::vec((any::<u8>(), any::<u8>()), 0..64)) {
        let (v, m) = model_of(&ops);
        prop_assert_eq!(v.raw(), m);
        prop_assert_eq!(v.len(), m.count_ones() as usize);
        prop_assert_eq!(v.is_empty(), m == 0);
        prop_assert_eq!(v.is_full(), m == u64::MAX);
        for line in 0..64usize {
            prop_assert_eq!(v.contains(line), (m >> line) & 1 == 1);
            prop_assert_eq!(v.rank(line), (m & ((1u64 << line) - 1)).count_ones() as usize);
        }
        let from_iter: Vec<usize> = v.iter().collect();
        let from_model: Vec<usize> = (0..64).filter(|&i| (m >> i) & 1 == 1).collect();
        prop_assert_eq!(from_iter, from_model);
    }

    #[test]
    fn set_algebra_matches_u64(a in any::<u64>(), b in any::<u64>()) {
        let (va, vb) = (OBitVector::from_raw(a), OBitVector::from_raw(b));
        prop_assert_eq!(va.union(vb).raw(), a | b);
        prop_assert_eq!(va.intersection(vb).raw(), a & b);
        prop_assert_eq!(va.difference(vb).raw(), a & !b);
    }

    #[test]
    fn snapshot_round_trip(raw in any::<u64>()) {
        let v = OBitVector::from_raw(raw);
        let mut w = SnapshotWriter::new();
        w.put_u64(v.raw());
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        let back = OBitVector::from_raw(r.get_u64().expect("u64 present"));
        r.expect_end().expect("no trailing bytes");
        prop_assert_eq!(back, v);
        prop_assert_eq!(back.raw(), raw);
    }
}
