//! Acceptance tests for deterministic simulation testing (DESIGN.md §8):
//! snapshot round-trip identity across workloads, crash-point
//! convergence at scale (with and without PR-1 fault plans), and the
//! differential fuzzer catching and shrinking a deliberate bug.

use page_overlays::sim::{
    generate_mc_ops, generate_ops, read_trace, run_crash_convergence, run_crash_convergence_staged,
    run_ops, run_trace, shrink_ops, write_trace, Machine, SimHarness, SystemConfig, TraceOp,
};
use page_overlays::types::{CrashStage, FaultPlan, FaultSite, VirtAddr, Vpn};

/// Restoring a snapshot into a fresh machine must reproduce the
/// snapshot byte-for-byte, and the restored machine must stay in
/// lockstep with the original under continued execution.
fn assert_round_trip(mut m: Machine, follow_on: impl Fn(&mut Machine)) {
    let bytes = m.save_snapshot();
    let mut twin = Machine::new(m.config().clone()).expect("twin construction");
    twin.restore_snapshot(&bytes).expect("restore");
    assert_eq!(twin.save_snapshot(), bytes, "restore must be byte-identical");
    follow_on(&mut m);
    follow_on(&mut twin);
    assert_eq!(twin.save_snapshot(), m.save_snapshot(), "lockstep continuation diverged");
}

#[test]
fn snapshot_round_trips_over_fork_workload() {
    let mut m = Machine::new(SystemConfig::table2_overlay()).expect("machine");
    let parent = m.spawn_process().expect("spawn");
    m.map_range(parent, Vpn::new(0x100), 8).expect("map");
    for i in 0..32u64 {
        m.poke(parent, VirtAddr::new(0x100_000 + i * 97), i as u8).expect("poke");
    }
    let child = m.fork(parent).expect("fork");
    for i in 0..32u64 {
        m.poke(child, VirtAddr::new(0x100_000 + i * 131), !i as u8).expect("poke");
    }
    assert_round_trip(m, move |m| {
        for i in 0..16u64 {
            m.poke(parent, VirtAddr::new(0x100_000 + i * 61), 0x5A).expect("poke");
        }
        m.flush_overlays().expect("flush");
    });
}

#[test]
fn snapshot_round_trips_over_timed_trace_workload() {
    let mut m = Machine::new(SystemConfig::table2()).expect("machine");
    let pid = m.spawn_process().expect("spawn");
    m.map_range(pid, Vpn::new(0x100), 4).expect("map");
    let trace: Vec<TraceOp> = (0..200u64)
        .map(|i| match i % 3 {
            0 => TraceOp::Compute((i % 5) as u32 + 1),
            1 => TraceOp::Load(VirtAddr::new(0x100_000 + (i * 64) % 0x4000)),
            _ => TraceOp::Store(VirtAddr::new(0x100_000 + (i * 192) % 0x4000)),
        })
        .collect();
    run_trace(&mut m, pid, &trace).expect("trace");
    let tail = trace.clone();
    assert_round_trip(m, move |m| {
        run_trace(m, pid, &tail[..50]).expect("trace tail");
    });
}

#[test]
fn snapshot_round_trips_over_fuzz_workload_with_faults() {
    let plan = FaultPlan::new(0xDEC0)
        .with_probability(FaultSite::OmsAllocFailed, 0.05)
        .with_probability(FaultSite::OmsGrowRefused, 0.05);
    let mut h = SimHarness::with_fault_plan(SystemConfig::table2_overlay(), plan).expect("harness");
    for op in &generate_ops(0xBEEF, 250) {
        h.apply(op).expect("apply");
    }
    assert_round_trip(h.machine, |m| {
        let _ = m.flush_overlays();
        let _ = m.recover_overlay_memory(None);
    });
}

/// ≥100 seeded (trace, crash-point) pairs must converge, including with
/// PR-1 fault plans active.
#[test]
fn crash_convergence_at_scale() {
    let config = SystemConfig::table2_overlay();
    let mut crashes = 0u32;
    let mut pairs = 0u32;
    for seed in 0..18u64 {
        let ops = generate_ops(seed, 120);
        let plan = if seed % 3 == 0 {
            FaultPlan::new(seed ^ 0xFA17)
                .with_probability(FaultSite::OmsAllocFailed, 0.05)
                .with_probability(FaultSite::OmsGrowRefused, 0.05)
        } else {
            FaultPlan::new(seed)
        };
        for crash_at in [5u64, 33, 61, 87, 104, 119] {
            let crashed = run_crash_convergence(&config, &ops, &plan, crash_at, 16)
                .unwrap_or_else(|e| panic!("seed {seed} crash_at {crash_at}: {e}"));
            pairs += 1;
            crashes += crashed as u32;
        }
    }
    assert!(pairs >= 100, "only {pairs} pairs exercised");
    assert!(crashes >= 100, "only {crashes}/{pairs} pairs actually crashed");
}

/// Interior crash stages at scale: ≥100 seeded (trace, stage) pairs
/// where the power is cut *inside* a transition — mid-promotion,
/// mid-reclaim, and in the OMT-write→OMS-free window. Every pair must
/// (a) freeze in a state the executable spec admits as a legal interior
/// state and (b) recover to byte-identical convergence with the golden
/// run. Every named interior stage must actually fire across the
/// matrix.
#[test]
fn interior_crash_matrix_is_spec_legal_and_converges() {
    // A low promotion threshold makes MidPromotion reachable on short
    // streams; MidReclaim and OmtFreeWindow ride commits and discards.
    let config = SystemConfig { promote_threshold: 4, ..SystemConfig::table2_overlay() };
    let mut pairs = 0u32;
    let mut fired = std::collections::BTreeMap::<&str, u32>::new();
    for seed in 0..12u64 {
        let ops = generate_ops(seed, 120);
        let plan = if seed % 3 == 0 {
            FaultPlan::new(seed ^ 0xFA17)
                .with_probability(FaultSite::OmsAllocFailed, 0.05)
                .with_probability(FaultSite::OmsGrowRefused, 0.05)
        } else {
            FaultPlan::new(seed)
        };
        for stage in CrashStage::INTERIOR {
            for crash_at in [0u64, 2, 5] {
                let crashed =
                    run_crash_convergence_staged(&config, &ops, &plan, crash_at, 8, stage)
                        .unwrap_or_else(|e| {
                            panic!("seed {seed} stage {} crash_at {crash_at}: {e}", stage.name())
                        });
                pairs += 1;
                if crashed {
                    *fired.entry(stage.name()).or_insert(0) += 1;
                }
            }
        }
    }
    assert!(pairs >= 100, "only {pairs} (trace, stage) pairs exercised");
    for stage in CrashStage::INTERIOR {
        let n = fired.get(stage.name()).copied().unwrap_or(0);
        assert!(n >= 5, "interior stage {} fired only {n} times", stage.name());
    }
}

/// The interior crash matrix under cross-core interleavings: the same
/// mid-transition power cuts, but on streams whose timed ops hop
/// between the cores of a multi-core machine (`OnCore` directives every
/// few ops), so promotions, reclaims, and OMT writes are interrupted
/// while *other* cores hold live TLB obitvec copies. Every interior
/// stage must fire and every pair must converge byte-identically.
#[test]
fn interior_crash_matrix_converges_under_cross_core_interleavings() {
    for cores in [2usize, 4] {
        let config = SystemConfig { cores, promote_threshold: 4, ..SystemConfig::table2_overlay() };
        let mut fired = std::collections::BTreeMap::<&str, u32>::new();
        for seed in 0..14u64 {
            let ops = generate_mc_ops(seed, 120, cores);
            let plan = if seed % 3 == 0 {
                FaultPlan::new(seed ^ 0xFA17)
                    .with_probability(FaultSite::OmsAllocFailed, 0.05)
                    .with_probability(FaultSite::OmsGrowRefused, 0.05)
            } else {
                FaultPlan::new(seed)
            };
            for stage in CrashStage::INTERIOR {
                for crash_at in [0u64, 2, 5] {
                    let crashed =
                        run_crash_convergence_staged(&config, &ops, &plan, crash_at, 8, stage)
                            .unwrap_or_else(|e| {
                                panic!(
                                    "cores {cores} seed {seed} stage {} crash_at {crash_at}: {e}",
                                    stage.name()
                                )
                            });
                    if crashed {
                        *fired.entry(stage.name()).or_insert(0) += 1;
                    }
                }
            }
        }
        for stage in CrashStage::INTERIOR {
            let n = fired.get(stage.name()).copied().unwrap_or(0);
            assert!(n >= 3, "cores {cores}: interior stage {} fired only {n} times", stage.name());
        }
    }
}

/// Multi-core fuzz streams run clean through the differential harness
/// (spec refinement after every op), their coherence annotation
/// streams replay race-free through the PA-C happens-before verifier,
/// and a snapshot taken mid-stream round-trips with per-core state
/// intact.
#[test]
fn multicore_fuzz_streams_converge_and_round_trip() {
    let config = SystemConfig { cores: 4, ..SystemConfig::table2_overlay() };
    for seed in [7u64, 21, 42] {
        let ops = generate_mc_ops(seed, 250, 4);
        run_ops(&config, None, &ops, false).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let report = page_overlays::analyze::verifier::replay_and_analyze(
            &config,
            &ops,
            &format!("seed {seed}"),
        )
        .unwrap_or_else(|e| panic!("seed {seed} PA-C replay: {e}"));
        assert!(
            report.findings.is_empty(),
            "seed {seed}: clean multi-core run must be PA-C clean:\n{}",
            report.to_human()
        );
    }
    let mut h = SimHarness::new(config).expect("harness");
    for op in &generate_mc_ops(0xC0DE, 250, 4) {
        h.apply(op).expect("apply");
    }
    assert_round_trip(h.machine, |m| {
        let _ = m.flush_overlays();
    });
}

/// CoW baseline convergence (the machinery is mode-independent).
#[test]
fn crash_convergence_in_cow_mode() {
    let config = SystemConfig::table2();
    for seed in [3u64, 17, 99] {
        let ops = generate_ops(seed, 120);
        let plan = FaultPlan::new(seed);
        for crash_at in [20u64, 80] {
            let crashed = run_crash_convergence(&config, &ops, &plan, crash_at, 8)
                .unwrap_or_else(|e| panic!("seed {seed} crash_at {crash_at}: {e}"));
            assert!(crashed);
        }
    }
}

/// The fuzzer must catch the deliberately injected bug and shrink the
/// failing stream to ≤10 ops that replay through the trace format.
#[test]
fn fuzzer_catches_injected_bug_and_shrinks() {
    let config = SystemConfig::table2_overlay();
    let mut caught = false;
    for seed in 0..5u64 {
        let ops = generate_ops(seed, 300);
        if run_ops(&config, None, &ops, true).is_err() {
            caught = true;
            let shrunk = shrink_ops(&config, None, &ops, true);
            assert!(shrunk.len() <= 10, "shrunk trace still has {} ops", shrunk.len());
            // The shrunk trace survives a save/load cycle and still fails.
            let mut buf = Vec::new();
            write_trace(&mut buf, &shrunk).expect("write trace");
            let replayed = read_trace(buf.as_slice()).expect("read trace");
            assert_eq!(replayed, shrunk);
            assert!(
                run_ops(&config, None, &replayed, true).is_err(),
                "replayed shrunk trace no longer fails"
            );
            break;
        }
    }
    assert!(caught, "no seed in 0..5 tripped the injected bug");
    // Sanity: without the bug the same streams are clean.
    for seed in 0..2u64 {
        run_ops(&config, None, &generate_ops(seed, 300), false).expect("clean run diverged");
    }
}
