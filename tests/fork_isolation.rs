//! Property tests for fork isolation (DESIGN.md invariant 4): after a
//! fork, parent and child never observe each other's writes — under
//! classic copy-on-write AND overlay-on-write — and both modes converge
//! to the same final memory state as an eager-copy oracle.

use page_overlays::sim::{Machine, SystemConfig};
use page_overlays::types::{Asid, VirtAddr, Vpn};
use proptest::prelude::*;
use std::collections::HashMap;

const BASE_VPN: u64 = 0x300;
const PAGES: u64 = 6;

#[derive(Clone, Debug)]
struct WriteOp {
    /// `true` = parent writes, `false` = child writes.
    by_parent: bool,
    page: u64,
    offset: u64,
    value: u8,
}

fn write_strategy() -> impl Strategy<Value = WriteOp> {
    (any::<bool>(), 0u64..PAGES, 0u64..4096, any::<u8>())
        .prop_map(|(by_parent, page, offset, value)| WriteOp { by_parent, page, offset, value })
}

fn va(page: u64, offset: u64) -> VirtAddr {
    VirtAddr::new((BASE_VPN + page) * 4096 + offset)
}

fn setup(overlay_mode: bool, init: &[(u64, u64, u8)]) -> (Machine, Asid, Asid) {
    let config = if overlay_mode { SystemConfig::table2_overlay() } else { SystemConfig::table2() };
    let mut m = Machine::new(config).unwrap();
    let parent = m.spawn_process().unwrap();
    m.map_range(parent, Vpn::new(BASE_VPN), PAGES).unwrap();
    for &(page, offset, value) in init {
        m.poke(parent, va(page, offset), value).unwrap();
    }
    let child = m.fork(parent).unwrap();
    (m, parent, child)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both modes preserve isolation and agree with a flat per-process
    /// oracle, byte for byte.
    #[test]
    fn fork_isolation_matches_oracle(
        init in prop::collection::vec((0u64..PAGES, 0u64..4096, any::<u8>()), 0..20),
        writes in prop::collection::vec(write_strategy(), 1..60),
        probes in prop::collection::vec((0u64..PAGES, 0u64..4096), 1..30),
    ) {
        for overlay_mode in [false, true] {
            let (mut m, parent, child) = setup(overlay_mode, &init);

            // Oracle: two flat byte maps seeded with the pre-fork state.
            let mut oracle: HashMap<(bool, u64), u8> = HashMap::new();
            let lookup = |oracle: &HashMap<(bool, u64), u8>, by_parent: bool, addr: u64| {
                oracle
                    .get(&(by_parent, addr))
                    .or_else(|| oracle.get(&(true, addr)).filter(|_| false))
                    .copied()
            };
            let mut pre: HashMap<u64, u8> = HashMap::new();
            for &(page, offset, value) in &init {
                pre.insert(va(page, offset).raw(), value);
            }

            for w in &writes {
                let who = if w.by_parent { parent } else { child };
                m.poke(who, va(w.page, w.offset), w.value).unwrap();
                oracle.insert((w.by_parent, va(w.page, w.offset).raw()), w.value);
            }

            for &(page, offset) in &probes {
                let addr = va(page, offset);
                for by_parent in [true, false] {
                    let who = if by_parent { parent } else { child };
                    let got = m.peek(who, addr).unwrap();
                    let expect = lookup(&oracle, by_parent, addr.raw())
                        .or_else(|| pre.get(&addr.raw()).copied())
                        .unwrap_or(0);
                    prop_assert_eq!(
                        got, expect,
                        "mode={} who={} addr={}",
                        overlay_mode, if by_parent { "parent" } else { "child" }, addr
                    );
                }
            }
        }
    }

    /// The two mechanisms are observationally equivalent: identical
    /// final states for identical write sequences.
    #[test]
    fn cow_and_oow_converge_to_identical_state(
        writes in prop::collection::vec(write_strategy(), 1..40),
    ) {
        let init = [(0u64, 0u64, 1u8), (1, 100, 2), (2, 200, 3)];
        let (mut cow, cp, cc) = setup(false, &init);
        let (mut oow, op, oc) = setup(true, &init);
        for w in &writes {
            let (cw, ow) = if w.by_parent { (cp, op) } else { (cc, oc) };
            cow.poke(cw, va(w.page, w.offset), w.value).unwrap();
            oow.poke(ow, va(w.page, w.offset), w.value).unwrap();
        }
        // Compare every written location plus the initial ones.
        for w in &writes {
            for (c_who, o_who) in [(cp, op), (cc, oc)] {
                let a = va(w.page, w.offset);
                prop_assert_eq!(cow.peek(c_who, a).unwrap(), oow.peek(o_who, a).unwrap());
            }
        }
    }
}

#[test]
fn timed_stores_preserve_isolation_too() {
    // The timed path (access_at) must make the same functional
    // transitions as poke for the divergence bookkeeping: after a timed
    // store to a CoW page in overlay mode, the OBitVector is set and
    // the child's view is intact.
    let (mut m, parent, child) = setup(true, &[(0, 0, 0x55)]);
    use page_overlays::types::AccessKind;
    m.access_at(0, parent, va(0, 0), AccessKind::Write).unwrap();
    let opn = page_overlays::types::Opn::encode(parent, Vpn::new(BASE_VPN));
    assert!(m.overlay().obitvec(opn).unwrap().contains(0));
    assert_eq!(m.peek(child, va(0, 0)).unwrap(), 0x55, "child unaffected by timed store");
}
