//! Property tests for the paper's access semantics (§2.1) and promotion
//! actions (§4.3.4) — DESIGN.md invariants 1, 3 and 5.
//!
//! Oracle: a flat 4 KB shadow page updated alongside the framework.
//! After any interleaving of overlaying writes, simple writes, evictions
//! and reads, line `i` must read as the overlay copy iff
//! `OBitVector[i]` is set, else as the physical-page copy.

use page_overlays::dram::DataStore;
use page_overlays::overlay::{OverlayConfig, OverlayManager, SegmentClass, SegmentMeta};
use page_overlays::types::{Asid, LineData, MainMemAddr, Opn, Vpn};
use proptest::prelude::*;

const PHYS_FRAME: u64 = 0x9000_0000;

fn opn() -> Opn {
    Opn::encode(Asid::new(1), Vpn::new(0x42))
}

fn phys_line(line: usize) -> MainMemAddr {
    MainMemAddr::new(PHYS_FRAME + (line * 64) as u64)
}

/// One step of the random walk.
#[derive(Clone, Debug)]
enum Op {
    OverlayingWrite { line: usize, fill: u8 },
    SimpleWrite { line: usize, fill: u8 },
    Evict { line: usize },
    EvictAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, any::<u8>()).prop_map(|(line, fill)| Op::OverlayingWrite { line, fill }),
        (0usize..64, any::<u8>()).prop_map(|(line, fill)| Op::SimpleWrite { line, fill }),
        (0usize..64).prop_map(|line| Op::Evict { line }),
        Just(Op::EvictAll),
    ]
}

struct Harness {
    mgr: OverlayManager,
    mem: DataStore,
    shadow: [LineData; 64],
    cursor: u64,
}

impl Harness {
    fn new() -> Self {
        let mut mem = DataStore::new();
        let mut shadow = [LineData::zeroed(); 64];
        // Physical page has recognizable contents.
        for (l, slot) in shadow.iter_mut().enumerate() {
            let data = LineData::splat(0x80 | l as u8);
            mem.write_line(phys_line(l), data);
            *slot = data;
        }
        Self { mgr: OverlayManager::new(OverlayConfig::default()), mem, shadow, cursor: 0x8_0000 }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::OverlayingWrite { line, fill } => {
                self.mgr.overlaying_write(opn(), line, LineData::splat(fill)).unwrap();
                self.shadow[line] = LineData::splat(fill);
            }
            Op::SimpleWrite { line, fill } => {
                // Only legal if the line is already in the overlay.
                let present = self.mgr.obitvec(opn()).map(|v| v.contains(line)).unwrap_or(false);
                if present {
                    self.mgr.write_line(opn(), line, LineData::splat(fill)).unwrap();
                    self.shadow[line] = LineData::splat(fill);
                } else {
                    assert!(self.mgr.write_line(opn(), line, LineData::splat(fill)).is_err());
                }
            }
            Op::Evict { line } => {
                let present = self.mgr.obitvec(opn()).map(|v| v.contains(line)).unwrap_or(false);
                if present {
                    let Harness { mgr, mem, cursor, .. } = self;
                    mgr.evict_line(opn(), line, mem, &mut |frames| {
                        let base = MainMemAddr::new(*cursor * 4096);
                        *cursor += frames;
                        Ok(base)
                    })
                    .unwrap();
                }
            }
            Op::EvictAll => {
                if self.mgr.has_overlay(opn()) {
                    let Harness { mgr, mem, cursor, .. } = self;
                    mgr.evict_all(opn(), mem, &mut |frames| {
                        let base = MainMemAddr::new(*cursor * 4096);
                        *cursor += frames;
                        Ok(base)
                    })
                    .unwrap();
                }
            }
        }
    }

    /// The access-semantics check: every line reads per §2.1.
    fn check_all_lines(&self) {
        let obv = self.mgr.obitvec(opn()).unwrap_or(page_overlays::types::OBitVector::EMPTY);
        for line in 0..64 {
            let got = self.mgr.resolve_read(opn(), line, phys_line(line), &self.mem).unwrap();
            assert_eq!(got, self.shadow[line], "line {line}, obv={obv}");
            // Physical page is never modified by overlay operations.
            if !obv.contains(line) {
                assert_eq!(
                    self.mem.read_line(phys_line(line)),
                    LineData::splat(0x80 | line as u8),
                    "physical page corrupted at line {line}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: access semantics equal the flat-shadow oracle under
    /// arbitrary operation interleavings.
    #[test]
    fn access_semantics_match_flat_oracle(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut h = Harness::new();
        for op in &ops {
            h.apply(op);
        }
        h.check_all_lines();
        h.mgr.store().check_conservation().unwrap();
    }

    /// Invariant 5a: copy-and-commit produces exactly the merged view,
    /// clears the OBitVector, and frees all OMS space.
    #[test]
    fn copy_and_commit_equals_merged_view(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut h = Harness::new();
        for op in &ops {
            h.apply(op);
        }
        if !h.mgr.has_overlay(opn()) {
            return Ok(());
        }
        let dst = MainMemAddr::new(0xA000_0000);
        let src = MainMemAddr::new(PHYS_FRAME);
        let Harness { mgr, mem, shadow, .. } = &mut h;
        mgr.copy_and_commit(opn(), src, dst, mem).unwrap();
        for (line, expect) in shadow.iter().enumerate() {
            assert_eq!(mem.read_line(dst.add((line * 64) as u64)), *expect, "line {line}");
        }
        prop_assert!(!h.mgr.has_overlay(opn()));
        prop_assert_eq!(h.mgr.overlay_memory_bytes(), 0);
        h.mgr.store().check_conservation().unwrap();
    }

    /// Invariant 5b: discard reverts to the physical page and frees all
    /// OMS space.
    #[test]
    fn discard_reverts_to_physical_page(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut h = Harness::new();
        for op in &ops {
            h.apply(op);
        }
        if !h.mgr.has_overlay(opn()) {
            return Ok(());
        }
        h.mgr.discard(opn()).unwrap();
        for line in 0..64 {
            let got = h.mgr.resolve_read(opn(), line, phys_line(line), &h.mem).unwrap();
            prop_assert_eq!(got, LineData::splat(0x80 | line as u8));
        }
        prop_assert_eq!(h.mgr.overlay_memory_bytes(), 0);
        h.mgr.store().check_conservation().unwrap();
    }

    /// Invariant 3: segment metadata slot pointers always form a partial
    /// injection lines → slots, and the free vector is its complement.
    #[test]
    fn segment_metadata_is_a_partial_injection(
        lines in prop::collection::btree_set(0usize..64, 0..30),
        frees in prop::collection::vec(0usize..64, 0..10),
    ) {
        let class = SegmentClass::for_lines(lines.len());
        let mut meta = SegmentMeta::new(class);
        for &l in &lines {
            meta.alloc_slot(l).expect("class sized for the line count");
        }
        for &l in &frees {
            meta.free_slot(l);
        }
        if class != SegmentClass::K4 {
            // Injection: no two lines share a slot.
            let mut seen = std::collections::BTreeSet::new();
            for l in 0..64 {
                if let Some(s) = meta.slot_of(l) {
                    prop_assert!(s >= 1 && s < class.slots(), "slot {s} out of range");
                    prop_assert!(seen.insert(s), "slot {s} assigned twice");
                }
            }
            // Used + free slot counts account for every data slot.
            let used = meta.used_slots();
            prop_assert_eq!(used, seen.len());
        }
        // Round-trip through the 352-bit encoding.
        let decoded = SegmentMeta::decode(class, &meta.encode());
        prop_assert_eq!(decoded, meta);
    }
}
