//! Property tests for the Overlay Memory Store (DESIGN.md invariant 2):
//! byte conservation under arbitrary allocate/free/grow interleavings,
//! non-overlap of live segments, and split behavior.

use page_overlays::overlay::{OverlayMemoryStore, SegmentClass};
use page_overlays::types::{
    FaultInjector, FaultPlan, FaultSite, MainMemAddr, PoError, SnapshotReader, SnapshotWriter,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Replays `ops` against a fresh store, tracking live segments and a
/// sparse byte "memory" in which every allocated segment is stamped
/// with a pattern derived from its (first) base address. Shared setup
/// for the compaction properties below.
fn churned_store(ops: &[Op]) -> (OverlayMemoryStore, BTreeMap<u64, (SegmentClass, u8)>, Vec<u8>) {
    let mut store = OverlayMemoryStore::new();
    store.add_chunk(MainMemAddr::new(0x0), 2);
    let mut live: BTreeMap<u64, (SegmentClass, u8)> = BTreeMap::new();
    // Chunks are laid out back-to-back from 0 so the whole managed
    // range fits a small flat byte model (initial 2 frames + an 8-frame
    // growth budget = 40 KB).
    let mut mem = vec![0u8; 10 * 4096];
    let mut next_base = 2 * 4096u64;
    let mut grow_budget = 8u64;
    for op in ops {
        match *op {
            Op::Alloc(class) => {
                if let Ok(base) = store.allocate(class) {
                    let stamp = (base.raw() >> 8) as u8 ^ 0x5A;
                    for b in &mut mem[base.raw() as usize..base.raw() as usize + class.bytes()] {
                        *b = stamp;
                    }
                    live.insert(base.raw(), (class, stamp));
                }
            }
            Op::Free(i) => {
                if !live.is_empty() {
                    let key = *live.keys().nth(i % live.len()).expect("nonempty");
                    let (class, _) = live.remove(&key).expect("present");
                    store.free(MainMemAddr::new(key), class).unwrap();
                }
            }
            Op::Grow(frames) => {
                if grow_budget >= frames {
                    grow_budget -= frames;
                    store.add_chunk(MainMemAddr::new(next_base), frames);
                    next_base += frames * 4096;
                }
            }
        }
    }
    (store, live, mem)
}

#[derive(Clone, Debug)]
enum Op {
    Alloc(SegmentClass),
    /// Free the i-th oldest live allocation (mod live count).
    Free(usize),
    Grow(u64),
}

fn class_strategy() -> impl Strategy<Value = SegmentClass> {
    prop_oneof![
        Just(SegmentClass::B256),
        Just(SegmentClass::B512),
        Just(SegmentClass::K1),
        Just(SegmentClass::K2),
        Just(SegmentClass::K4),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        class_strategy().prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Free),
        (1u64..4).prop_map(Op::Grow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn oms_conserves_bytes_and_never_overlaps(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut store = OverlayMemoryStore::new();
        store.add_chunk(MainMemAddr::new(0x10_0000), 2);
        let mut live: BTreeMap<u64, SegmentClass> = BTreeMap::new();
        let mut next_chunk = 0x100u64; // chunk index for growth

        for op in &ops {
            match *op {
                Op::Alloc(class) => match store.allocate(class) {
                    Ok(base) => {
                        // No overlap with any live segment.
                        let lo = base.raw();
                        let hi = lo + class.bytes() as u64;
                        for (&olo, &oclass) in &live {
                            let ohi = olo + oclass.bytes() as u64;
                            prop_assert!(
                                hi <= olo || lo >= ohi,
                                "segment [{lo:#x},{hi:#x}) overlaps [{olo:#x},{ohi:#x})"
                            );
                        }
                        // Alignment to its own size.
                        prop_assert_eq!(lo % class.bytes() as u64, 0);
                        live.insert(lo, class);
                    }
                    Err(PoError::OverlayStoreExhausted) => {} // fine
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                },
                Op::Free(i) => {
                    if !live.is_empty() {
                        let key = *live.keys().nth(i % live.len()).expect("nonempty");
                        let class = live.remove(&key).expect("present");
                        store.free(MainMemAddr::new(key), class).unwrap();
                    }
                }
                Op::Grow(frames) => {
                    store.add_chunk(MainMemAddr::new(next_chunk * 0x1000_0000), frames);
                    next_chunk += 1;
                }
            }
            store.check_conservation().unwrap();
            // Live bytes match the allocator's own accounting.
            let live_bytes: u64 = live.values().map(|c| c.bytes() as u64).sum();
            prop_assert_eq!(store.bytes_in_use(), live_bytes);
        }
    }

    /// DESIGN.md "Fault model & degradation": under a seeded fault plan
    /// injecting allocation failures, plus refused growth once a budget
    /// is spent, every operation either succeeds or fails cleanly with
    /// `OverlayStoreExhausted` — and after *every* step the accounting
    /// (`bytes_in_use + bytes_free == bytes_managed`), the structural
    /// layout (free lists disjoint and chunk-bounded), and the model's
    /// own view of live segments all still hold.
    #[test]
    fn oms_faulted_ops_preserve_invariants(
        ops in prop::collection::vec(op_strategy(), 1..200),
        seed in 0u64..1024,
    ) {
        let mut store = OverlayMemoryStore::new();
        store.set_fault_injector(FaultInjector::from_plan(
            FaultPlan::new(seed).with_probability(FaultSite::OmsAllocFailed, 0.2),
        ));
        store.add_chunk(MainMemAddr::new(0x10_0000), 2);
        let mut live: BTreeMap<u64, SegmentClass> = BTreeMap::new();
        let mut next_chunk = 0x100u64;
        // The OS grants only this many further frames: past it, growth is
        // refused and the store must keep operating on what it has.
        let mut grow_budget = 6u64;

        for op in &ops {
            match *op {
                Op::Alloc(class) => match store.allocate(class) {
                    Ok(base) => {
                        prop_assert_eq!(base.raw() % class.bytes() as u64, 0);
                        live.insert(base.raw(), class);
                    }
                    // Real exhaustion and injected failure look the same
                    // to the caller: a clean, retryable error.
                    Err(PoError::OverlayStoreExhausted) => {}
                    Err(e) => prop_assert!(false, "unexpected error {}", e),
                },
                Op::Free(i) => {
                    if !live.is_empty() {
                        let key = *live.keys().nth(i % live.len()).expect("nonempty");
                        let class = live.remove(&key).expect("present");
                        store.free(MainMemAddr::new(key), class).unwrap();
                    }
                }
                Op::Grow(frames) => {
                    if grow_budget >= frames {
                        grow_budget -= frames;
                        store.add_chunk(MainMemAddr::new(next_chunk * 0x1000_0000), frames);
                        next_chunk += 1;
                    }
                    // else: the OS refused the chunk; nothing changes.
                }
            }
            store.check_conservation().unwrap();
            store.verify_layout().unwrap();
            prop_assert_eq!(
                store.bytes_in_use() + store.bytes_free(),
                store.bytes_managed()
            );
            let live_bytes: u64 = live.values().map(|c| c.bytes() as u64).sum();
            prop_assert_eq!(store.bytes_in_use(), live_bytes);
        }
    }

    /// Freeing everything returns the store to fully-free.
    #[test]
    fn full_free_restores_all_bytes(classes in prop::collection::vec(class_strategy(), 1..40)) {
        let mut store = OverlayMemoryStore::new();
        store.add_chunk(MainMemAddr::new(0x40_0000), 16);
        let mut live = Vec::new();
        for class in classes {
            if let Ok(base) = store.allocate(class) {
                live.push((base, class));
            }
        }
        for (base, class) in live {
            store.free(base, class).unwrap();
        }
        prop_assert_eq!(store.bytes_in_use(), 0);
        prop_assert_eq!(store.bytes_free(), store.bytes_managed());
        store.check_conservation().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// §4.4.2 compaction is semantically invisible and structurally
    /// sound under arbitrary fragmentation: after one pass, byte
    /// conservation and free-list layout still hold, no live byte
    /// changed (every segment still carries its stamp, at its possibly
    /// new address), in-use accounting is untouched, every accepted
    /// move strictly lowered the segment's address, and the relocated
    /// live set is still non-overlapping.
    #[test]
    fn compact_conserves_and_preserves_contents(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let (mut store, mut live, mut mem) = churned_store(&ops);
        let in_use_before = store.bytes_in_use();
        let managed_before = store.bytes_managed();
        let live_list: Vec<(MainMemAddr, SegmentClass)> =
            live.iter().map(|(&b, &(c, _))| (MainMemAddr::new(b), c)).collect();
        let mut moved = Vec::new();
        let outcome = store
            .compact(&live_list, |old, new, class| {
                assert!(
                    new.raw() < old.raw(),
                    "non-improving move {:#x} -> {:#x}",
                    old.raw(),
                    new.raw()
                );
                mem.copy_within(
                    old.raw() as usize..old.raw() as usize + class.bytes(),
                    new.raw() as usize,
                );
                moved.push((old.raw(), new.raw()));
                Ok(())
            })
            .unwrap();
        prop_assert_eq!(outcome.moves as usize, moved.len());
        prop_assert!(!outcome.aborted);
        for (old, new) in moved {
            let entry = live.remove(&old).expect("moved segment was live");
            live.insert(new, entry);
        }
        store.check_conservation().unwrap();
        store.verify_layout().unwrap();
        prop_assert_eq!(store.bytes_in_use(), in_use_before);
        prop_assert_eq!(store.bytes_managed(), managed_before);
        let mut prev_end = 0u64;
        for (&base, &(class, stamp)) in &live {
            prop_assert!(base >= prev_end, "live segments overlap after compaction");
            prev_end = base + class.bytes() as u64;
            for (i, &b) in
                mem[base as usize..base as usize + class.bytes()].iter().enumerate()
            {
                prop_assert_eq!(
                    b, stamp,
                    "byte {} of segment {:#x} corrupted by relocation", i, base
                );
            }
        }
    }

    /// A snapshot taken mid-fragmentation round-trips exactly: the
    /// restored store reports identical accounting, runs an identical
    /// compaction pass (same moves, merges, and relocated bytes — the
    /// free lists are ordered state, not advisory), and re-encodes to
    /// the same bytes afterwards.
    #[test]
    fn compact_after_snapshot_roundtrip_matches(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let (mut store, live, _mem) = churned_store(&ops);
        let mut w = SnapshotWriter::new();
        store.encode_snapshot(&mut w);
        let buf = w.finish();
        let mut restored =
            OverlayMemoryStore::decode_snapshot(&mut SnapshotReader::new(&buf)).unwrap();
        prop_assert_eq!(restored.bytes_in_use(), store.bytes_in_use());
        prop_assert_eq!(restored.bytes_free(), store.bytes_free());
        prop_assert_eq!(restored.bytes_managed(), store.bytes_managed());
        prop_assert_eq!(
            restored.fragmentation_ratio().to_bits(),
            store.fragmentation_ratio().to_bits()
        );
        for class in SegmentClass::ALL {
            prop_assert_eq!(restored.free_count(class), store.free_count(class));
        }
        restored.check_conservation().unwrap();
        restored.verify_layout().unwrap();
        let live_list: Vec<(MainMemAddr, SegmentClass)> =
            live.iter().map(|(&b, &(c, _))| (MainMemAddr::new(b), c)).collect();
        let a = store.compact(&live_list, |_, _, _| Ok(())).unwrap();
        let b = restored.compact(&live_list, |_, _, _| Ok(())).unwrap();
        prop_assert_eq!(a, b);
        let (mut wa, mut wb) = (SnapshotWriter::new(), SnapshotWriter::new());
        store.encode_snapshot(&mut wa);
        restored.encode_snapshot(&mut wb);
        prop_assert_eq!(wa.finish(), wb.finish(), "post-compaction snapshots diverge");
    }
}

#[test]
fn worst_case_fragmentation_still_serves_16_smallest() {
    // One page split entirely into 256 B segments.
    let mut store = OverlayMemoryStore::new();
    store.add_chunk(MainMemAddr::new(0x0), 1);
    for i in 0..16 {
        store.allocate(SegmentClass::B256).unwrap_or_else(|e| panic!("alloc {i}: {e}"));
    }
    assert_eq!(store.bytes_in_use(), 4096);
    assert_eq!(store.bytes_free(), 0);
}
