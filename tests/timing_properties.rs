//! Property tests for the timing models: the core window model, the
//! DRAM scheduler, and the machine's end-to-end latency accounting —
//! plus failure injection for the Overlay Memory Store growth path.

use page_overlays::dram::{DataStore, DramConfig, DramModel};
use page_overlays::overlay::{OverlayConfig, OverlayManager};
use page_overlays::sim::{CoreModel, Machine, SystemConfig};
use page_overlays::types::{AccessKind, Asid, LineData, MainMemAddr, Opn, PoError, VirtAddr, Vpn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core model: cycles are monotone, instructions are counted
    /// exactly, and total cycles are bounded below by issue width and
    /// above by full serialization.
    #[test]
    fn core_model_bounds(latencies in prop::collection::vec(1u64..2000, 1..200)) {
        let mut core = CoreModel::new(64);
        let mut last_cycles = 0;
        for &lat in &latencies {
            let t = core.next_issue_cycle();
            core.complete(t, lat);
            prop_assert!(core.cycles() >= last_cycles, "retirement must be monotone");
            last_cycles = core.cycles();
        }
        let n = latencies.len() as u64;
        prop_assert_eq!(core.instructions(), n);
        // Lower bound: single issue. Upper bound: fully serialized.
        let serial: u64 = latencies.iter().sum::<u64>() + n;
        prop_assert!(core.cycles() >= n);
        prop_assert!(core.cycles() <= serial, "{} > {}", core.cycles(), serial);
    }

    /// A wider window never makes execution slower.
    #[test]
    fn wider_window_is_never_slower(latencies in prop::collection::vec(1u64..500, 1..100)) {
        let mut cycles_by_window = Vec::new();
        for window in [4usize, 16, 64] {
            let mut core = CoreModel::new(window);
            for &lat in &latencies {
                let t = core.next_issue_cycle();
                core.complete(t, lat);
            }
            cycles_by_window.push(core.cycles());
        }
        prop_assert!(cycles_by_window[0] >= cycles_by_window[1]);
        prop_assert!(cycles_by_window[1] >= cycles_by_window[2]);
    }

    /// DRAM: completion times are monotone per issue order, and every
    /// access takes at least the row-hit latency.
    #[test]
    fn dram_completions_are_sane(addrs in prop::collection::vec(0u64..(1 << 24), 1..200)) {
        let mut dram = DramModel::new(DramConfig::table2());
        let min = DramConfig::table2().row_hit_latency();
        let mut t = 0;
        for &a in &addrs {
            let done = dram.read(t, MainMemAddr::new(a));
            prop_assert!(done >= t + min, "done={done} t={t}");
            t = done;
        }
        // Row-buffer accounting covers every serviced request.
        let s = dram.stats();
        prop_assert_eq!(
            s.row_hits.get() + s.row_closed.get() + s.row_conflicts.get(),
            addrs.len() as u64
        );
    }

    /// Machine timing: repeated reads of the same location converge to
    /// the L1+TLB hit latency and never return zero.
    #[test]
    fn machine_latencies_converge(page in 0u64..8, line in 0usize..64) {
        let mut m = Machine::new(SystemConfig::table2()).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(0x500), 8).unwrap();
        let va = VirtAddr::new((0x500 + page) * 4096 + (line * 64) as u64);
        let first = m.access_at(0, pid, va, AccessKind::Read).unwrap();
        let mut t = first;
        let mut latest = first;
        for _ in 0..3 {
            latest = m.access_at(t, pid, va, AccessKind::Read).unwrap();
            t += latest;
        }
        prop_assert!(first >= 1000, "cold access must pay the TLB walk, got {first}");
        prop_assert!((1..=3).contains(&latest), "steady state must be an L1 hit, got {latest}");
    }
}

#[test]
fn oms_growth_failure_is_contained() {
    // If the OS refuses to grow the OMS, the eviction fails cleanly and
    // the overlay's data stays readable from the cache-resident copy.
    let mut mgr = OverlayManager::new(OverlayConfig::default());
    let mut mem = DataStore::new();
    let opn = Opn::encode(Asid::new(1), Vpn::new(1));
    mgr.overlaying_write(opn, 5, LineData::splat(7)).unwrap();

    let err = mgr.evict_line(opn, 5, &mut mem, &mut |_| Err(PoError::OutOfMemory)).unwrap_err();
    assert!(matches!(err, PoError::OutOfMemory));
    // State is consistent: line still present and readable, store empty.
    assert!(mgr.obitvec(opn).unwrap().contains(5));
    assert_eq!(mgr.read_line(opn, 5, &mem).unwrap(), LineData::splat(7));
    assert_eq!(mgr.store().bytes_in_use(), 0);
    mgr.store().check_conservation().unwrap();

    // A later successful grant lets the same eviction proceed.
    let mut cursor = 0x100u64;
    mgr.evict_line(opn, 5, &mut mem, &mut |frames| {
        let base = MainMemAddr::new(cursor * 4096);
        cursor += frames;
        Ok(base)
    })
    .unwrap();
    assert_eq!(mgr.read_line(opn, 5, &mem).unwrap(), LineData::splat(7));
}

#[test]
fn machine_survives_frame_exhaustion_on_cow() {
    // A machine with barely any frames: the CoW copy path runs out of
    // memory and reports it rather than corrupting state.
    let mut config = SystemConfig::table2();
    config.vm.total_frames = 3; // 2 mapped pages + nothing spare
    let mut m = Machine::new(config).unwrap();
    let pid = m.spawn_process().unwrap();
    m.map_range(pid, Vpn::new(1), 2).unwrap();
    let child = m.fork(pid).unwrap();
    // Sole remaining frame goes to the first CoW copy...
    m.access_at(0, pid, VirtAddr::new(0x1000), AccessKind::Write).unwrap();
    // ...the second fault must fail with OutOfMemory.
    let err = m.access_at(0, pid, VirtAddr::new(0x2000), AccessKind::Write).unwrap_err();
    assert!(matches!(err, PoError::OutOfMemory));
    // The child's view is untouched.
    assert_eq!(m.peek(child, VirtAddr::new(0x1000)).unwrap(), 0);
}

#[test]
fn overlay_mode_dodges_frame_exhaustion() {
    // The same tiny machine in overlay mode: no page copies, so the
    // writes succeed where CoW ran out of frames. (The OMS grant draws
    // frames too, but only one chunk for many diverged lines.)
    let mut config = SystemConfig::table2_overlay();
    config.vm.total_frames = 70; // 2 pages + one 64-frame OMS chunk + slack
    config.overlay.oms_chunk_frames = 64;
    config.promote_threshold = 65; // never promote: fully-diverged pages stay overlays
    let mut m = Machine::new(config).unwrap();
    let pid = m.spawn_process().unwrap();
    m.map_range(pid, Vpn::new(1), 2).unwrap();
    let _child = m.fork(pid).unwrap();
    for line in 0..64usize {
        m.access_at(0, pid, VirtAddr::new(0x1000 + (line * 64) as u64), AccessKind::Write).unwrap();
        m.access_at(0, pid, VirtAddr::new(0x2000 + (line * 64) as u64), AccessKind::Write).unwrap();
    }
    m.flush_overlays().unwrap();
    assert_eq!(m.overlay().overlay_count(), 2);
}
