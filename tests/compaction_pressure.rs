//! Pinned regression for OMS compaction as the middle rung of the
//! memory-pressure ladder (DESIGN.md §14, paper §4.4.2).
//!
//! The paper's allocator never coalesces, so segment-class churn
//! strands free bytes in the small classes: after a fill/free cycle the
//! store can hold two entirely-free pages yet fail a 4 KB allocation.
//! With the frame pool dry (the OS cannot grant another grow chunk),
//! the only way out is compaction. This test pins both sides of that
//! claim: the same seeded churn workload OOMs with
//! [`SystemConfig::oms_compaction`] disabled and completes — with
//! byte-exact overlay contents — enabled.

use page_overlays::sim::{Machine, SystemConfig};
use page_overlays::types::{PoError, VirtAddr, Vpn};

const BASE_VPN: u64 = 0x200;
/// Pages whose one-line overlays shatter the store into 256 B segments.
const FILL_PAGES: u64 = 32;
const PAGE: u64 = 4096;
const LINE: u64 = 64;

/// Frame budget: 33 mapped pages + 32 commit privatizations + 2 OMS
/// grow chunks, and nothing spare for the chunk the fragmented store
/// asks for when compaction is off.
const TOTAL_FRAMES: u64 = 67;

fn va(page: u64, line: u64) -> VirtAddr {
    VirtAddr::new((BASE_VPN + page) * PAGE + line * LINE)
}

/// The churn workload. Fork, diverge one line on each of 32 pages and
/// flush (32 live B256 segments, exactly two OMS pages), commit every
/// one of them (frees all 32 segments — onto the B256 free list, where
/// the paper's allocator leaves them forever), then diverge *every*
/// line of one more shared page and flush: the segment must grow
/// B256 → B512 → K1 → K2 → K4, and none of those classes has a free
/// slot unless the shattered bytes are coalesced.
fn churn(compaction: bool) -> Result<Machine, PoError> {
    let mut config = SystemConfig::table2_overlay();
    config.oms_compaction = compaction;
    // One-frame grow chunks: the store holds exactly what it asked for.
    config.overlay.oms_chunk_frames = 1;
    config.vm.total_frames = TOTAL_FRAMES;
    let mut m = Machine::new(config)?;
    let parent = m.spawn_process()?;
    m.map_range(parent, Vpn::new(BASE_VPN), FILL_PAGES + 1)?;
    let _child = m.fork(parent)?;
    for page in 0..FILL_PAGES {
        m.poke(parent, va(page, 0), 0xA0 ^ page as u8)?;
    }
    m.flush_overlays()?;
    for page in 0..FILL_PAGES {
        m.commit_overlay(parent, Vpn::new(BASE_VPN + page))?;
    }
    for line in 0..64 {
        m.poke(parent, va(FILL_PAGES, line), 0x50 ^ line as u8)?;
    }
    m.flush_overlays()?;
    m.verify_invariants()?;
    Ok(m)
}

#[test]
fn fragmented_churn_ooms_without_compaction() {
    match churn(false) {
        Err(PoError::OutOfMemory | PoError::OverlayStoreExhausted) => {}
        Err(e) => panic!("expected an allocation failure, got {e}"),
        Ok(m) => panic!(
            "churn completed without compaction: frag={:.3}, oms={} bytes — \
             the workload no longer fragments the store; re-tune it",
            m.overlay().store().fragmentation_ratio(),
            m.overlay().store().bytes_in_use()
        ),
    }
}

#[test]
fn fragmented_churn_completes_with_compaction() {
    let mut m = churn(true).expect("compaction must absorb the fragmented demand");
    let parent = page_overlays::types::Asid::new(1);
    // The whole-page overlay survived the grows byte-for-byte.
    for line in 0..64 {
        assert_eq!(
            m.peek(parent, va(FILL_PAGES, line)).unwrap(),
            0x50 ^ line as u8,
            "line {line} corrupted across compacted segment growth"
        );
    }
    // Committed pages kept their divergence too.
    for page in 0..FILL_PAGES {
        assert_eq!(m.peek(parent, va(page, 0)).unwrap(), 0xA0 ^ page as u8);
    }
    let stats = m.overlay_stats();
    let store = m.overlay().store();
    assert!(
        store.stats().compaction_passes.get() > 0,
        "churn completed but compaction never ran — the workload is not \
         exercising the ladder"
    );
    assert!(store.stats().relocated_bytes.get() > 0 || store.fragmentation_ratio() < 0.5);
    // The fill pages collapsed their overlays at commit; only the
    // whole-page overlay remains.
    assert_eq!(stats.reclaims.get(), 0, "reclaim should have had nothing to give");
}
